package runner

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/scenario"
)

// tinyConfig keeps test runs fast: a 4-robot field over a short horizon
// still exercises failures, reports, floods, and repairs.
func tinyConfig(alg core.Algorithm, seed int64) scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Algorithm = alg
	cfg.SimTime = 3000
	cfg.MeanLifetime = 4000 // enough failures in the short horizon
	cfg.Seed = seed
	return cfg
}

// fingerprint renders Results to canonical bytes. The Registry field is
// excluded from JSON, so this captures exactly the reported quantities.
func fingerprint(t *testing.T, r scenario.Results) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunDeterministicAcrossRepeats guards the simulator core: the same
// (config, seed) must reproduce byte-identical results run-to-run. This
// is the invariant the event pool and scratch-buffer reuse must not break.
func TestRunDeterministicAcrossRepeats(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := tinyConfig(alg, 7)
		a, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fa, fb := fingerprint(t, a), fingerprint(t, b)
		if fa != fb {
			t.Fatalf("%v: same config+seed diverged:\nrun1: %s\nrun2: %s", alg, fa, fb)
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts guards the parallel engine: a
// grid must produce byte-identical per-cell results with 1 worker and
// with many, in the same stable input order.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var jobs []Job
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		for seed := int64(1); seed <= 2; seed++ {
			jobs = append(jobs, Job{Config: tinyConfig(alg, seed)})
		}
	}
	serial, _, err := Run(jobs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := Run(jobs, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result count: serial=%d parallel=%d want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		if serial[i].Index != i || parallel[i].Index != i {
			t.Fatalf("results out of input order at %d", i)
		}
		fs, fp := fingerprint(t, serial[i].Res), fingerprint(t, parallel[i].Res)
		if fs != fp {
			t.Fatalf("cell %d differs between 1 and 4 workers:\nserial:   %s\nparallel: %s", i, fs, fp)
		}
	}
}

func TestRunReportsStats(t *testing.T) {
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(3))
	results, stats, err := Run(jobs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 3 || stats.Failed != 0 || stats.Procs != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if want := 3 * 3000.0; stats.SimSeconds != want {
		t.Fatalf("SimSeconds = %v, want %v", stats.SimSeconds, want)
	}
	if stats.Throughput() <= 0 {
		t.Fatalf("Throughput = %v, want > 0", stats.Throughput())
	}
	for i, r := range results {
		if r.Job.Config.Seed != int64(i+1) {
			t.Fatalf("Expand seed order broken: job %d has seed %d", i, r.Job.Config.Seed)
		}
	}
}

func TestRunJoinsAllErrorsWithoutAborting(t *testing.T) {
	bad := tinyConfig(core.Dynamic, 1)
	bad.Robots = 0 // fails validation
	worse := tinyConfig(core.Fixed, 2)
	worse.SimTime = -1 // also fails validation
	jobs := []Job{
		{Config: tinyConfig(core.Dynamic, 1)},
		{Config: bad},
		{Config: tinyConfig(core.Fixed, 2)},
		{Config: worse},
	}
	results, stats, err := Run(jobs, Options{Procs: 2})
	if err == nil {
		t.Fatal("expected the invalid jobs' errors")
	}
	if stats.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", stats.Failed)
	}
	// errors.Join keeps every failure addressable via errors.Is and
	// renders them all, annotated with the job index, in input order.
	if !errors.Is(err, results[1].Err) || !errors.Is(err, results[3].Err) {
		t.Fatalf("joined error lost a member: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "job 1") || !strings.Contains(msg, "job 3") {
		t.Fatalf("joined error not annotated with job indices: %q", msg)
	}
	if strings.Index(msg, "job 1") > strings.Index(msg, "job 3") {
		t.Fatalf("joined errors out of input order: %q", msg)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatal("healthy jobs should still have run")
	}
	if results[2].Res.FailuresInjected == 0 {
		t.Fatal("job after the failure did not run")
	}
}

func TestRunOnResultSeesEveryJob(t *testing.T) {
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(4))
	seen := make(map[int]bool)
	_, _, err := Run(jobs, Options{Procs: 3, OnResult: func(r Result) {
		seen[r.Index] = true // serialized by the engine
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("OnResult saw %d of %d jobs", len(seen), len(jobs))
	}
}

func TestSeedsAndExpand(t *testing.T) {
	if s := Seeds(0); len(s) != 1 || s[0] != 1 {
		t.Fatalf("Seeds(0) = %v", s)
	}
	jobs := Expand(tinyConfig(core.Dynamic, 0), []int64{5, 9})
	if len(jobs) != 2 || jobs[0].Config.Seed != 5 || jobs[1].Config.Seed != 9 {
		t.Fatalf("Expand jobs = %+v", jobs)
	}
	if tag, ok := jobs[1].Tag.(int64); !ok || tag != 9 {
		t.Fatalf("Expand tag = %v", jobs[1].Tag)
	}
}
