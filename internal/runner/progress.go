package runner

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Progress is a live snapshot of a running grid, delivered to
// Options.Progress after completed jobs.
type Progress struct {
	// Done is the number of jobs completed so far (including failures).
	Done int
	// Total is the grid size.
	Total int
	// Failed is the number of completed jobs that returned an error.
	Failed int
	// Procs is the worker-pool size.
	Procs int
	// Elapsed is the wall-clock time since the grid started.
	Elapsed time.Duration
	// SimSeconds is the simulated time completed so far.
	SimSeconds float64
	// ETA estimates the remaining wall-clock time from the mean pace of
	// the completed jobs (zero until the first job lands).
	ETA time.Duration
	// Utilization is the fraction of worker-time spent inside simulation
	// runs so far, in [0, 1].
	Utilization float64
}

// Rate reports simulated seconds completed per wall-clock second so far.
func (p Progress) Rate() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return p.SimSeconds / p.Elapsed.Seconds()
}

// String renders the snapshot as a one-line status.
func (p Progress) String() string {
	line := fmt.Sprintf("%d/%d runs (%.0f sim-s/s, %.0f%% util, eta %s)",
		p.Done, p.Total, p.Rate(), 100*p.Utilization, p.ETA.Round(time.Second))
	if p.Failed > 0 {
		line += fmt.Sprintf(" [%d failed]", p.Failed)
	}
	return line
}

// ProgressWriter returns a Progress callback that rewrites a single status
// line on w (stderr, normally), using \r so a live terminal shows one
// updating line. Pass it as Options.Progress.
func ProgressWriter(w io.Writer) func(Progress) {
	return func(p Progress) {
		fmt.Fprintf(w, "\r\x1b[K%s", p)
		if p.Done == p.Total {
			fmt.Fprintln(w)
		}
	}
}

// progressState accumulates grid progress behind the runner's result
// mutex. A nil *progressState is inert, so the runner can call observe and
// finish unconditionally.
type progressState struct {
	fn       func(Progress)
	every    time.Duration
	total    int
	procs    int
	start    time.Time
	busy     []atomic.Int64 // shared with the workers
	done     int
	failed   int
	simDone  float64
	lastEmit time.Time
}

func newProgressState(opts Options, total, procs int, start time.Time, busy []atomic.Int64) *progressState {
	if opts.Progress == nil {
		return nil
	}
	return &progressState{
		fn:       opts.Progress,
		every:    opts.ProgressEvery,
		total:    total,
		procs:    procs,
		start:    start,
		busy:     busy,
		lastEmit: start, // rate-limit from the grid start, not the epoch
	}
}

// observe folds one completed job in and emits a snapshot when due.
// Callers serialize via the runner's result mutex.
func (ps *progressState) observe(r Result) {
	if ps == nil {
		return
	}
	ps.done++
	if r.Err != nil {
		ps.failed++
	} else {
		ps.simDone += r.Job.Config.SimTime
	}
	now := time.Now()
	if ps.done < ps.total && ps.every > 0 && now.Sub(ps.lastEmit) < ps.every {
		return
	}
	ps.lastEmit = now
	ps.fn(ps.snapshot(now))
}

func (ps *progressState) snapshot(now time.Time) Progress {
	elapsed := now.Sub(ps.start)
	p := Progress{
		Done:       ps.done,
		Total:      ps.total,
		Failed:     ps.failed,
		Procs:      ps.procs,
		Elapsed:    elapsed,
		SimSeconds: ps.simDone,
	}
	if ps.done > 0 && ps.done < ps.total {
		// Pool-wide pace: done jobs took elapsed with the workers already
		// running in parallel, so the remainder drains at the same rate.
		p.ETA = elapsed * time.Duration(ps.total-ps.done) / time.Duration(ps.done)
	}
	var busyNs int64
	for i := range ps.busy {
		busyNs += ps.busy[i].Load()
	}
	if elapsed > 0 && ps.procs > 0 {
		p.Utilization = float64(busyNs) / (float64(elapsed) * float64(ps.procs))
	}
	return p
}
