package runner

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roborepair/internal/checkpoint"
	"roborepair/internal/core"
	"roborepair/internal/scenario"
)

// journalGrid is the resume-test grid: two algorithms × two seeds, small
// enough to run repeatedly.
func journalGrid() []Job {
	var jobs []Job
	for _, alg := range []core.Algorithm{core.Dynamic, core.Fixed} {
		for seed := int64(1); seed <= 2; seed++ {
			jobs = append(jobs, Job{Config: tinyConfig(alg, seed), Tag: seed})
		}
	}
	return jobs
}

// TestJournalResumeReplaysCompletedJobs: a grid resumed against a journal
// holding a strict subset of its results re-runs only the remainder, and
// the final result set is bit-identical to an uninterrupted grid's.
func TestJournalResumeReplaysCompletedJobs(t *testing.T) {
	jobs := journalGrid()
	ref, _, err := Run(jobs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}

	// First invocation "dies" after journaling two jobs: simulate by
	// recording a subset into a fresh journal.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if err := j.record(ref[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second invocation resumes.
	j2, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Completed() != 2 {
		t.Fatalf("Completed = %d, want 2", j2.Completed())
	}
	results, stats, err := Run(jobs, Options{Procs: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2", stats.Skipped)
	}
	for i := range ref {
		if got, want := fingerprint(t, results[i].Res), fingerprint(t, ref[i].Res); got != want {
			t.Errorf("job %d: resumed result diverged:\n got %s\nwant %s", i, got, want)
		}
	}

	// Third invocation: everything journaled, nothing runs.
	j3, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Completed() != len(jobs) {
		t.Fatalf("Completed = %d, want %d", j3.Completed(), len(jobs))
	}
	_, stats3, err := Run(jobs, Options{Procs: 2, Journal: j3})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Skipped != len(jobs) || stats3.SimSeconds != 0 {
		t.Fatalf("full resume: Skipped = %d, SimSeconds = %g; want %d, 0",
			stats3.Skipped, stats3.SimSeconds, len(jobs))
	}
}

// TestJournalToleratesTornTrailingLine: a crash mid-append leaves a torn
// final line; reopening discards exactly that line, keeps every complete
// entry, and appends cleanly afterwards.
func TestJournalToleratesTornTrailingLine(t *testing.T) {
	jobs := journalGrid()
	ref, _, err := Run(jobs[:1], Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record(ref[0]); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a torn write: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":1,"res":{"fail`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatalf("torn trailing line rejected: %v", err)
	}
	if j2.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1 (torn line must not count)", j2.Completed())
	}
	// The truncated tail must not corrupt the next append.
	if err := j2.record(Result{Index: 1, Job: jobs[1], Res: ref[0].Res}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Completed() != 2 {
		t.Fatalf("Completed after re-append = %d, want 2", j3.Completed())
	}
}

// TestJournalRejectsMismatchedGrid: a journal written for one grid must
// not resume a different one.
func TestJournalRejectsMismatchedGrid(t *testing.T) {
	jobs := journalGrid()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := journalGrid()
	other[0].Config.Seed = 99
	if _, err := OpenJournal(path, other); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("mismatched grid: err = %v, want ErrJournalMismatch", err)
	}
	if _, err := OpenJournal(path, jobs[:3]); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("shorter grid: err = %v, want ErrJournalMismatch", err)
	}
}

// TestJournalRejectsMidfileCorruption: a torn line is only forgivable at
// the tail; garbage in the middle is corruption.
func TestJournalRejectsMidfileCorruption(t *testing.T) {
	jobs := journalGrid()
	ref, _, err := Run(jobs[:1], Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record(ref[0]); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Garbage followed by a valid complete entry: the bad line is not the
	// tail, so this is corruption, not a torn write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("NOT JSON\n")
	f.WriteString(`{"index":1,"err":"x"}` + "\n")
	f.Close()
	if _, err := OpenJournal(path, jobs); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestStatsSurfacePanics: recovered per-job panics are counted and the
// first message surfaced, so a grid that limps through poisoned configs
// says so instead of hiding it in the joined error.
func TestStatsSurfacePanics(t *testing.T) {
	withRunJob(t, func(cfg scenario.Config) (scenario.Results, error) {
		if cfg.Seed >= 3 {
			panic("poisoned")
		}
		return scenario.Results{Config: cfg}, nil
	})
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(4))
	_, stats, err := Run(jobs, Options{Procs: 2})
	if err == nil {
		t.Fatal("expected joined error")
	}
	if stats.PanicRecoveries != 2 {
		t.Fatalf("PanicRecoveries = %d, want 2", stats.PanicRecoveries)
	}
	if !strings.Contains(stats.FirstPanic, "poisoned") {
		t.Fatalf("FirstPanic = %q, want the panic message", stats.FirstPanic)
	}
}

// TestCheckpointedJobResumes: a job with a banked mid-run snapshot is
// restored and continued rather than restarted, and still produces the
// uninterrupted result. A garbage snapshot is rejected and the job falls
// back to a full run — same result either way.
func TestCheckpointedJobResumes(t *testing.T) {
	cfg := tinyConfig(core.Dynamic, 1)
	jobs := []Job{{Config: cfg}}
	ref, _, err := Run(jobs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Bank a genuine mid-run snapshot where the runner will look for it.
	w, err := scenario.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.Run(1500)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "job-000000.ckpt")
	if err := checkpoint.WriteFile(ckpt, snap); err != nil {
		t.Fatal(err)
	}

	results, stats, err := Run(jobs, Options{Procs: 1, CheckpointDir: dir, CheckpointEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 {
		t.Fatalf("Resumed = %d, want 1", stats.Resumed)
	}
	if got, want := fingerprint(t, results[0].Res), fingerprint(t, ref[0].Res); got != want {
		t.Errorf("resumed job diverged:\n got %s\nwant %s", got, want)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale checkpoint not removed after completion: %v", err)
	}

	// Corrupt snapshot: rejected, full re-run, same result.
	if err := os.WriteFile(ckpt, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	results, stats, err = Run(jobs, Options{Procs: 1, CheckpointDir: dir, CheckpointEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotsRejected != 1 || stats.Resumed != 0 {
		t.Fatalf("SnapshotsRejected = %d, Resumed = %d; want 1, 0", stats.SnapshotsRejected, stats.Resumed)
	}
	if got, want := fingerprint(t, results[0].Res), fingerprint(t, ref[0].Res); got != want {
		t.Errorf("rejected-snapshot job diverged:\n got %s\nwant %s", got, want)
	}
}
