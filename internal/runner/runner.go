// Package runner is the parallel experiment engine: it fans a grid of
// independent simulation configurations out over a fixed pool of worker
// goroutines and collects per-run results in stable input order.
//
// Every simulation run is self-contained — it builds its own scheduler,
// medium, metrics registry, and random streams from the config seed — so
// runs parallelize with no shared state and no locks on the hot path.
// Results are therefore bit-identical for a given (config, seed) whatever
// the worker count; only wall-clock time changes. The engine reports
// aggregate throughput in simulated seconds per wall-clock second, the
// simulator's headline performance number.
package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"roborepair/internal/checkpoint"
	"roborepair/internal/ftdc"
	"roborepair/internal/scenario"
	"roborepair/internal/sim"
)

// Job is one cell of an experiment grid: a complete run configuration
// plus optional caller metadata carried through to the Result.
type Job struct {
	Config scenario.Config
	// Tag is opaque caller metadata (e.g. the swept parameter value).
	Tag any
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's position in the input slice.
	Index int
	// Job echoes the input cell.
	Job Job
	// Res holds the run's results when Err is nil.
	Res scenario.Results
	// Err is the run error, if the configuration failed to build or run.
	Err error
}

// Stats aggregates one engine invocation.
type Stats struct {
	// Runs is the number of jobs executed (including failures).
	Runs int
	// Failed is the number of jobs that returned an error.
	Failed int
	// Procs is the worker count actually used.
	Procs int
	// Wall is the elapsed wall-clock time for the whole grid.
	Wall time.Duration
	// SimSeconds is the total simulated time across successful runs.
	SimSeconds float64
	// WorkerBusy is the time each worker spent inside simulation runs (as
	// opposed to idle, waiting for the grid to drain); indexed by worker.
	WorkerBusy []time.Duration
	// Skipped is the number of jobs replayed from the resume journal
	// instead of re-run (their SimSeconds do not count toward throughput).
	Skipped int
	// Resumed is the number of jobs continued mid-flight from an on-disk
	// checkpoint instead of started from scratch.
	Resumed int
	// SnapshotsRejected counts per-job checkpoint files that failed to
	// decode or verify; each such job fell back to a full run.
	SnapshotsRejected int
	// PanicRecoveries counts jobs whose run panicked; each panic was
	// recovered and converted into that job's error.
	PanicRecoveries int
	// FirstPanic is the first recovered panic's message, "" when none.
	FirstPanic string
	// FTDCDumps is the number of flight-recorder dumps written to
	// Options.FTDCDir (one per job that panicked or finished with
	// invariant violations).
	FTDCDumps int
}

// Utilization reports the fraction of worker-time spent running
// simulations, in [0, 1]. A value well below 1 on a long grid means the
// tail of slow jobs is starving the pool.
func (s Stats) Utilization() float64 {
	if s.Wall <= 0 || s.Procs == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range s.WorkerBusy {
		busy += b
	}
	return busy.Seconds() / (s.Wall.Seconds() * float64(s.Procs))
}

// Throughput reports simulated seconds per wall-clock second.
func (s Stats) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return s.SimSeconds / s.Wall.Seconds()
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d runs on %d workers in %.2fs (%.0f sim-s/s, %.0f%% util)",
		s.Runs, s.Procs, s.Wall.Seconds(), s.Throughput(), 100*s.Utilization())
}

// Options parameterizes an engine invocation.
type Options struct {
	// Procs is the worker-pool size; values ≤ 0 select GOMAXPROCS.
	Procs int
	// OnResult, when non-nil, observes each result as it completes.
	// Calls are serialized but arrive in completion order, which varies
	// with the worker count — use it for progress reporting, not for
	// order-dependent collection (the returned slice is already stable).
	OnResult func(Result)
	// Progress, when non-nil, receives a live snapshot of the grid after
	// completed jobs, rate-limited to one call per ProgressEvery, plus a
	// final snapshot when the grid drains. Calls are serialized. Use
	// ProgressWriter for the standard stderr rendering.
	Progress func(Progress)
	// ProgressEvery is the minimum wall-clock interval between Progress
	// calls; values ≤ 0 report after every job.
	ProgressEvery time.Duration
	// Journal, when non-nil, makes the grid crash-safe: every completed
	// job is durably appended, and jobs already present (from a previous,
	// killed invocation of the same grid) are replayed instead of re-run.
	// Replayed results are bit-identical to freshly computed ones except
	// for fields excluded from JSON (the live Registry and Telemetry
	// pointers), so order-stable CSV output is byte-identical on resume.
	Journal *Journal
	// CheckpointDir, when set together with CheckpointEvery > 0, snapshots
	// every running job's full simulator state to
	// CheckpointDir/job-NNNNNN.ckpt every CheckpointEvery simulated
	// seconds. A resumed grid restores each unfinished job from its latest
	// valid snapshot and re-runs only the remainder; snapshots that fail
	// decoding or replay verification are rejected and the job restarts
	// from scratch. Checkpoint files are removed as their jobs complete.
	CheckpointDir string
	// CheckpointEvery is the per-job snapshot period in simulated seconds.
	CheckpointEvery float64
	// FTDCDir, when set, arms black-box flight recording on every job and
	// dumps the retained recording to FTDCDir/job-NNNNNN.ftdc when that
	// job panics or finishes with invariant violations. Jobs whose
	// configs already enable recording keep their own settings; the rest
	// are armed in bounded last-N-chunk retention mode, which does not
	// perturb results (the recorder only reads simulation state). Clean
	// jobs leave no file behind.
	FTDCDir string
}

// blackBoxKeep bounds runner-armed flight recording: only the last
// blackBoxKeep encoded chunks (plus the pending tail) stay in memory,
// so arming a whole grid costs a few KiB per in-flight job regardless
// of horizon.
const blackBoxKeep = 4

// runJob executes one configuration; swappable so tests can inject
// failing or panicking jobs without a panicking scenario config.
var runJob = scenario.Run

// runWorld drives a built world to completion. It exists (and is
// swappable) so tests can inject a mid-run panic or synthetic invariant
// violations on the flight-recorder path, where the recorder pointer
// must be captured before the run starts.
var runWorld = func(w *scenario.World) scenario.Results { return w.Run() }

// runOutcome is runOne's full report: the run result plus how it got there.
type runOutcome struct {
	res        scenario.Results
	err        error
	panicked   bool
	resumed    bool // continued from a valid on-disk checkpoint
	rejected   bool // a checkpoint file existed but failed decode/verify
	ftdcDumped bool // flight recording written on panic/violation
}

// runOne runs a single job, converting a panic into an ordinary error so
// one poisoned configuration cannot take down the whole grid (or the
// worker goroutine, which would deadlock the WaitGroup). With a checkpoint
// path the job first tries to restore from an existing snapshot — falling
// back to a full run if the file is missing, torn, or fails replay
// verification — and snapshots periodically while running. With an FTDC
// path, black-box recording is armed and the retained window is written
// out if the job panics or finishes with invariant violations; the
// recorder pointer is captured before the run so the dump survives a
// panic that never returns Results.
func runOne(cfg scenario.Config, ckptPath string, every float64, ftdcPath string) (out runOutcome) {
	var rec *ftdc.Recorder
	defer func() {
		if r := recover(); r != nil {
			out.panicked = true
			out.err = fmt.Errorf("runner: job panicked: %v", r)
		}
		if ftdcPath == "" || rec == nil {
			return
		}
		if !out.panicked && len(out.res.Violations) == 0 {
			return
		}
		if err := rec.WriteFile(ftdcPath); err == nil {
			out.ftdcDumped = true
		}
	}()
	if ftdcPath != "" && !cfg.Recorder.Enabled {
		cfg.Recorder = ftdc.Config{Enabled: true, KeepChunks: blackBoxKeep}
	}
	if ckptPath == "" {
		if ftdcPath == "" {
			out.res, out.err = runJob(cfg)
			return out
		}
		w, err := scenario.New(cfg)
		if err != nil {
			out.err = err
			return out
		}
		rec = w.Recorder
		out.res = runWorld(w)
		return out
	}
	opts := scenario.CheckpointOptions{
		Every: sim.Duration(every),
		OnSnapshot: func(s *checkpoint.Snapshot) error {
			return checkpoint.WriteFile(ckptPath, s)
		},
	}
	if snap, err := checkpoint.ReadFile(ckptPath); err == nil {
		if w, rerr := scenario.Restore(snap); rerr == nil {
			out.resumed = true
			rec = w.Recorder
			out.res, out.err = w.RunCheckpointed(opts)
			return out
		}
		out.rejected = true
	} else if !errors.Is(err, os.ErrNotExist) {
		out.rejected = true
	}
	w, err := scenario.New(cfg)
	if err != nil {
		out.err = err
		return out
	}
	rec = w.Recorder
	out.res, out.err = w.RunCheckpointed(opts)
	return out
}

// Run executes every job on a pool of workers and returns the results in
// input order, alongside aggregate statistics. Individual run failures do
// not stop the grid; every failure (annotated with its job index, in
// input order) is aggregated into the returned error with errors.Join,
// so single-run callers keep the familiar (value, error) contract and
// grid callers see the complete failure picture. A job that panics is
// recovered and reported as that job's error.
func Run(jobs []Job, opts Options) ([]Result, Stats, error) {
	procs := opts.Procs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	if procs > len(jobs) {
		procs = len(jobs)
	}
	if procs < 1 {
		procs = 1
	}

	results := make([]Result, len(jobs))
	// Per-worker busy nanoseconds; atomics because the progress reporter
	// reads them while workers are mid-grid.
	busy := make([]atomic.Int64, procs)
	start := time.Now()
	prog := newProgressState(opts, len(jobs), procs, start, busy)

	// Replay journaled jobs up front: their results are already durable,
	// so the workers only see the remainder.
	skipped := make([]bool, len(jobs))
	nSkipped := 0
	if opts.Journal != nil {
		for i := range jobs {
			if res, jerr, ok := opts.Journal.lookup(i); ok {
				results[i] = Result{Index: i, Job: jobs[i], Res: res, Err: jerr}
				skipped[i] = true
				nSkipped++
				prog.observe(results[i])
			}
		}
	}

	ckptPath := func(i int) string {
		if opts.CheckpointDir == "" || opts.CheckpointEvery <= 0 {
			return ""
		}
		return filepath.Join(opts.CheckpointDir, fmt.Sprintf("job-%06d.ckpt", i))
	}
	ftdcPath := func(i int) string {
		if opts.FTDCDir == "" {
			return ""
		}
		return filepath.Join(opts.FTDCDir, fmt.Sprintf("job-%06d.ftdc", i))
	}
	if opts.FTDCDir != "" {
		if err := os.MkdirAll(opts.FTDCDir, 0o755); err != nil {
			return nil, Stats{}, fmt.Errorf("runner: ftdc dir: %w", err)
		}
	}

	// Shared robustness accounting, guarded by mu with OnResult/Progress.
	var (
		resumed, rejected, panics int
		ftdcDumps                 int
		firstPanic                string
		journalErr                error
	)
	var next atomic.Int64
	var mu sync.Mutex // serializes OnResult, Progress, journal, and counters
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if skipped[i] {
					continue
				}
				path := ckptPath(i)
				runStart := time.Now()
				out := runOne(jobs[i].Config, path, opts.CheckpointEvery, ftdcPath(i))
				busy[worker].Add(int64(time.Since(runStart)))
				r := Result{Index: i, Job: jobs[i], Res: out.res, Err: out.err}
				results[i] = r
				if path != "" {
					// The job is done; its snapshot is stale.
					os.Remove(path)
				}
				mu.Lock()
				if out.resumed {
					resumed++
				}
				if out.rejected {
					rejected++
				}
				if out.panicked {
					panics++
					if firstPanic == "" {
						firstPanic = out.err.Error()
					}
				}
				if out.ftdcDumped {
					ftdcDumps++
				}
				if opts.Journal != nil {
					if err := opts.Journal.record(r); err != nil && journalErr == nil {
						journalErr = err
					}
				}
				if opts.OnResult != nil {
					opts.OnResult(r)
				}
				prog.observe(r)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	workerBusy := make([]time.Duration, procs)
	for w := range busy {
		workerBusy[w] = time.Duration(busy[w].Load())
	}
	stats := Stats{
		Runs: len(jobs), Procs: procs, Wall: time.Since(start), WorkerBusy: workerBusy,
		Skipped: nSkipped, Resumed: resumed, SnapshotsRejected: rejected,
		PanicRecoveries: panics, FirstPanic: firstPanic, FTDCDumps: ftdcDumps,
	}
	var errs []error
	if journalErr != nil {
		errs = append(errs, journalErr)
	}
	for i := range results {
		if results[i].Err != nil {
			stats.Failed++
			errs = append(errs, fmt.Errorf("runner: job %d: %w", i, results[i].Err))
			continue
		}
		if !skipped[i] {
			stats.SimSeconds += results[i].Job.Config.SimTime
		}
	}
	return results, stats, errors.Join(errs...)
}

// Seeds returns the conventional seed list 1..n.
func Seeds(n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// Expand crosses a base configuration with a seed list: one job per seed,
// in seed order, with the seed as the Tag.
func Expand(base scenario.Config, seeds []int64) []Job {
	jobs := make([]Job, 0, len(seeds))
	for _, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		jobs = append(jobs, Job{Config: cfg, Tag: seed})
	}
	return jobs
}
