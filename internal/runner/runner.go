// Package runner is the parallel experiment engine: it fans a grid of
// independent simulation configurations out over a fixed pool of worker
// goroutines and collects per-run results in stable input order.
//
// Every simulation run is self-contained — it builds its own scheduler,
// medium, metrics registry, and random streams from the config seed — so
// runs parallelize with no shared state and no locks on the hot path.
// Results are therefore bit-identical for a given (config, seed) whatever
// the worker count; only wall-clock time changes. The engine reports
// aggregate throughput in simulated seconds per wall-clock second, the
// simulator's headline performance number.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"roborepair/internal/scenario"
)

// Job is one cell of an experiment grid: a complete run configuration
// plus optional caller metadata carried through to the Result.
type Job struct {
	Config scenario.Config
	// Tag is opaque caller metadata (e.g. the swept parameter value).
	Tag any
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's position in the input slice.
	Index int
	// Job echoes the input cell.
	Job Job
	// Res holds the run's results when Err is nil.
	Res scenario.Results
	// Err is the run error, if the configuration failed to build or run.
	Err error
}

// Stats aggregates one engine invocation.
type Stats struct {
	// Runs is the number of jobs executed (including failures).
	Runs int
	// Failed is the number of jobs that returned an error.
	Failed int
	// Procs is the worker count actually used.
	Procs int
	// Wall is the elapsed wall-clock time for the whole grid.
	Wall time.Duration
	// SimSeconds is the total simulated time across successful runs.
	SimSeconds float64
}

// Throughput reports simulated seconds per wall-clock second.
func (s Stats) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return s.SimSeconds / s.Wall.Seconds()
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d runs on %d workers in %.2fs (%.0f sim-s/s)",
		s.Runs, s.Procs, s.Wall.Seconds(), s.Throughput())
}

// Options parameterizes an engine invocation.
type Options struct {
	// Procs is the worker-pool size; values ≤ 0 select GOMAXPROCS.
	Procs int
	// OnResult, when non-nil, observes each result as it completes.
	// Calls are serialized but arrive in completion order, which varies
	// with the worker count — use it for progress reporting, not for
	// order-dependent collection (the returned slice is already stable).
	OnResult func(Result)
}

// Run executes every job on a pool of workers and returns the results in
// input order, alongside aggregate statistics. Individual run failures do
// not stop the grid; every failure (annotated with its job index, in
// input order) is aggregated into the returned error with errors.Join,
// so single-run callers keep the familiar (value, error) contract and
// grid callers see the complete failure picture.
func Run(jobs []Job, opts Options) ([]Result, Stats, error) {
	procs := opts.Procs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	if procs > len(jobs) {
		procs = len(jobs)
	}
	if procs < 1 {
		procs = 1
	}

	results := make([]Result, len(jobs))
	start := time.Now()
	var next atomic.Int64
	var mu sync.Mutex // serializes OnResult
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				res, err := scenario.Run(jobs[i].Config)
				r := Result{Index: i, Job: jobs[i], Res: res, Err: err}
				results[i] = r
				if opts.OnResult != nil {
					mu.Lock()
					opts.OnResult(r)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	stats := Stats{Runs: len(jobs), Procs: procs, Wall: time.Since(start)}
	var errs []error
	for i := range results {
		if results[i].Err != nil {
			stats.Failed++
			errs = append(errs, fmt.Errorf("runner: job %d: %w", i, results[i].Err))
			continue
		}
		stats.SimSeconds += results[i].Job.Config.SimTime
	}
	return results, stats, errors.Join(errs...)
}

// Seeds returns the conventional seed list 1..n.
func Seeds(n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// Expand crosses a base configuration with a seed list: one job per seed,
// in seed order, with the seed as the Tag.
func Expand(base scenario.Config, seeds []int64) []Job {
	jobs := make([]Job, 0, len(seeds))
	for _, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		jobs = append(jobs, Job{Config: cfg, Tag: seed})
	}
	return jobs
}
