package runner

import (
	"strings"
	"testing"
	"time"

	"roborepair/internal/core"
)

func TestRunReportsProgress(t *testing.T) {
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(4))
	var snaps []Progress
	_, stats, err := Run(jobs, Options{Procs: 2, Progress: func(p Progress) {
		snaps = append(snaps, p) // serialized by the engine
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	last := snaps[len(snaps)-1]
	if last.Done != len(jobs) || last.Total != len(jobs) {
		t.Fatalf("final snapshot = %+v, want done=total=%d", last, len(jobs))
	}
	if last.ETA != 0 {
		t.Fatalf("final ETA = %v, want 0", last.ETA)
	}
	if want := 4 * 3000.0; last.SimSeconds != want {
		t.Fatalf("final SimSeconds = %v, want %v", last.SimSeconds, want)
	}
	if last.Utilization <= 0 || last.Utilization > 1 {
		t.Fatalf("Utilization = %v, want (0, 1]", last.Utilization)
	}
	prev := 0
	for _, p := range snaps {
		if p.Done <= prev {
			t.Fatalf("Done not monotonic: %+v", snaps)
		}
		prev = p.Done
	}
	if len(stats.WorkerBusy) != 2 {
		t.Fatalf("WorkerBusy = %v, want 2 entries", stats.WorkerBusy)
	}
	var busy time.Duration
	for _, b := range stats.WorkerBusy {
		busy += b
	}
	if busy <= 0 {
		t.Fatal("workers recorded no busy time")
	}
	if u := stats.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("stats Utilization = %v, want (0, 1]", u)
	}
}

func TestProgressRateLimitKeepsFinalRow(t *testing.T) {
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(3))
	var snaps []Progress
	// An interval far longer than the grid suppresses the intermediate
	// rows but must never suppress the terminal one.
	_, _, err := Run(jobs, Options{Procs: 1, ProgressEvery: time.Hour,
		Progress: func(p Progress) { snaps = append(snaps, p) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Done != len(jobs) {
		t.Fatalf("snapshots = %+v, want exactly the terminal row", snaps)
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{
		Done: 3, Total: 8, Failed: 1, Procs: 2,
		Elapsed: 2 * time.Second, SimSeconds: 6000,
		ETA: 3 * time.Second, Utilization: 0.5,
	}
	s := p.String()
	for _, want := range []string{"3/8", "3000 sim-s/s", "50% util", "eta 3s", "[1 failed]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestProgressWriterRendersCarriageReturns(t *testing.T) {
	var b strings.Builder
	w := ProgressWriter(&b)
	w(Progress{Done: 1, Total: 2})
	w(Progress{Done: 2, Total: 2})
	out := b.String()
	if strings.Count(out, "\r") != 2 {
		t.Fatalf("output %q: want one \\r per update", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("output %q: terminal row should end the line", out)
	}
}
