package runner

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/scenario"
)

// withRunJob swaps the job executor for the duration of the test. The
// engine serializes nothing around runJob itself, so tests that stub it
// must not run in parallel with ones that use the real simulator.
func withRunJob(t *testing.T, fn func(scenario.Config) (scenario.Results, error)) {
	t.Helper()
	orig := runJob
	runJob = fn
	t.Cleanup(func() { runJob = orig })
}

// TestRunRecoversJobPanic: a panicking job becomes that job's error
// instead of killing the worker goroutine (which would deadlock the
// WaitGroup and take the whole grid down).
func TestRunRecoversJobPanic(t *testing.T) {
	withRunJob(t, func(cfg scenario.Config) (scenario.Results, error) {
		if cfg.Seed == 2 {
			panic("poisoned configuration")
		}
		return scenario.Results{Config: cfg}, nil
	})
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(4))
	results, stats, err := Run(jobs, Options{Procs: 2})
	if err == nil {
		t.Fatal("expected the panicking job's error")
	}
	if stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", stats.Failed)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "job panicked: poisoned configuration") {
		t.Fatalf("panic not converted to the job error: %v", results[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Fatalf("healthy job %d failed: %v", i, results[i].Err)
		}
	}
}

// TestRunJoinedErrorsInInputOrder: with completion order scrambled by the
// pool, the joined error still annotates and orders failures by input
// index.
func TestRunJoinedErrorsInInputOrder(t *testing.T) {
	withRunJob(t, func(cfg scenario.Config) (scenario.Results, error) {
		if cfg.Seed%2 == 0 {
			return scenario.Results{}, fmt.Errorf("seed %d refused", cfg.Seed)
		}
		return scenario.Results{Config: cfg}, nil
	})
	jobs := Expand(tinyConfig(core.Fixed, 0), Seeds(6))
	results, stats, err := Run(jobs, Options{Procs: 3})
	if err == nil {
		t.Fatal("expected errors")
	}
	if stats.Failed != 3 {
		t.Fatalf("Failed = %d, want 3", stats.Failed)
	}
	msg := err.Error()
	last := -1
	for _, i := range []int{1, 3, 5} { // seeds 2, 4, 6
		if !errors.Is(err, results[i].Err) {
			t.Fatalf("joined error lost job %d's error", i)
		}
		pos := strings.Index(msg, fmt.Sprintf("job %d:", i))
		if pos < 0 {
			t.Fatalf("joined error missing job %d: %q", i, msg)
		}
		if pos < last {
			t.Fatalf("joined errors out of input order: %q", msg)
		}
		last = pos
	}
}

// TestProgressUnderSingleWorker: with one worker completion order equals
// input order, so the progress stream is fully deterministic — every job
// observed (ProgressEvery ≤ 0), Done strictly increasing to Total,
// failures counted as they land, and a final snapshot at the drain.
func TestProgressUnderSingleWorker(t *testing.T) {
	withRunJob(t, func(cfg scenario.Config) (scenario.Results, error) {
		if cfg.Seed == 3 {
			return scenario.Results{}, errors.New("boom")
		}
		return scenario.Results{Config: cfg}, nil
	})
	jobs := Expand(tinyConfig(core.Centralized, 0), Seeds(5))
	var snaps []Progress
	_, _, err := Run(jobs, Options{
		Procs:    1,
		Progress: func(p Progress) { snaps = append(snaps, p) },
	})
	if err == nil {
		t.Fatal("expected the seed-3 error")
	}
	if len(snaps) != len(jobs) {
		t.Fatalf("got %d snapshots, want one per job: %+v", len(snaps), snaps)
	}
	for i, p := range snaps {
		if p.Done != i+1 {
			t.Fatalf("snapshot %d: Done = %d, want %d", i, p.Done, i+1)
		}
		if p.Total != len(jobs) || p.Procs != 1 {
			t.Fatalf("snapshot %d: %+v", i, p)
		}
		wantFailed := 0
		if i >= 2 { // seed 3 is job index 2
			wantFailed = 1
		}
		if p.Failed != wantFailed {
			t.Fatalf("snapshot %d: Failed = %d, want %d", i, p.Failed, wantFailed)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Done != final.Total || final.ETA != 0 {
		t.Fatalf("final snapshot not terminal: %+v", final)
	}
	// 4 successful jobs × 3000 simulated seconds each.
	if final.SimSeconds != 4*3000.0 {
		t.Fatalf("final SimSeconds = %v, want %v", final.SimSeconds, 4*3000.0)
	}
}
