package algorithm

import (
	"reflect"
	"strings"
	"testing"

	"roborepair/internal/core"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one containing %q)", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is not a string", r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

func TestRegisterDuplicatePanics(t *testing.T) {
	// "centralized" is registered by this package's own init.
	mustPanic(t, `duplicate registration of "centralized"`, func() {
		Register("centralized", newCentralized)
	})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	mustPanic(t, "empty name", func() {
		Register("", newCentralized)
	})
}

func TestRegisterNilFactoryPanics(t *testing.T) {
	mustPanic(t, "nil factory", func() {
		Register("nil-factory", nil)
	})
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := Lookup("bogus")
	if err == nil {
		t.Fatal("Lookup(bogus) succeeded")
	}
	// The error must name every registered algorithm so a config typo
	// is self-explaining.
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered algorithm %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("error %q does not echo the unknown name", err)
	}
}

func TestNamesDeterministicSorted(t *testing.T) {
	want := []string{"centralized", "dynamic", "facility", "fixed"}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := 0; i < 8; i++ {
		if again := Names(); !reflect.DeepEqual(again, got) {
			t.Fatalf("Names() unstable: %v then %v", got, again)
		}
	}
}

func TestAllMatchesNames(t *testing.T) {
	names := Names()
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d entries, Names() %d", len(all), len(names))
	}
	for i, a := range all {
		if string(a) != names[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, a, names[i])
		}
	}
}

func TestLegacyConstantsResolve(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic, Facility} {
		if _, err := Lookup(string(alg)); err != nil {
			t.Errorf("legacy constant %q no longer registered: %v", alg, err)
		}
		got, err := Parse(string(alg))
		if err != nil {
			t.Errorf("Parse(%q): %v", alg, err)
		} else if got != alg {
			t.Errorf("Parse(%q) = %q", alg, got)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	if _, err := Parse("paxos"); err == nil {
		t.Fatal("Parse(paxos) succeeded")
	}
}

func TestFacilityParamsValidate(t *testing.T) {
	cases := []struct {
		p  FacilityParams
		ok bool
	}{
		{FacilityParams{}, true},
		{FacilityParams{Objective: ObjectiveKMedian, Period: 250, Ledger: 16}, true},
		{FacilityParams{Objective: ObjectiveKCenter}, true},
		{FacilityParams{Objective: "steiner"}, false},
		{FacilityParams{Period: -1}, false},
		{FacilityParams{Ledger: -3}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c.p, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c.p)
		}
	}
}
