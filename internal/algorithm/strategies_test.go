package algorithm_test

// Strategy tests drive each registered factory through the real scenario
// pipeline (the external test package breaks the scenario → algorithm
// import cycle), so the coverage here is of algorithms doing their job —
// electing managers, placing robots, dispatching — not of mocks.

import (
	"strings"
	"testing"

	"roborepair/internal/algorithm"
	"roborepair/internal/core"
	"roborepair/internal/scenario"
)

func runCfg(name string) scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Algorithm = core.Algorithm(name)
	cfg.SimTime = 2000
	cfg.MeanLifetime = 1200 // plenty of failures inside the short horizon
	cfg.Seed = 9
	return cfg
}

// TestEveryRegisteredStrategyRepairs: each registered algorithm, built
// through its factory by the scenario layer, must actually repair
// failures. Enumerates the registry, so a new registration is covered
// automatically.
func TestEveryRegisteredStrategyRepairs(t *testing.T) {
	for _, name := range algorithm.Names() {
		t.Run(name, func(t *testing.T) {
			res, err := scenario.Run(runCfg(name))
			if err != nil {
				t.Fatal(err)
			}
			if res.FailuresInjected == 0 {
				t.Fatal("no failures injected; the config is too tame to test anything")
			}
			if res.Repairs == 0 {
				t.Fatalf("%d failures injected, none repaired", res.FailuresInjected)
			}
		})
	}
}

// TestScenarioRejectsUnknownAlgorithm: an unknown Config.Algorithm must
// fail fast at scenario.New with a message listing every registered
// name, not deep inside construction.
func TestScenarioRejectsUnknownAlgorithm(t *testing.T) {
	cfg := scenario.DefaultConfig()
	cfg.Algorithm = "simulated-annealing"
	_, err := scenario.New(cfg)
	if err == nil {
		t.Fatal("scenario.New accepted an unregistered algorithm")
	}
	for _, name := range algorithm.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered algorithm %q", err, name)
		}
	}
}

// facilityCfg is a light-load configuration — long lifetimes, long
// horizon — so robots spend most of their time idle and the periodic
// re-solver has someone to park.
func facilityCfg(objective string) scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Algorithm = algorithm.Facility
	cfg.SimTime = 12000
	cfg.MeanLifetime = 20000
	cfg.Seed = 7
	cfg.FacilityObjective = objective
	cfg.FacilityPeriodS = 400
	cfg.FacilityLedger = 32
	return cfg
}

// TestFacilityRelocatesIdleRobots: under light load the facility family
// must actually move idle robots toward solved facilities — under both
// objectives — while still repairing everything it can.
func TestFacilityRelocatesIdleRobots(t *testing.T) {
	for _, objective := range []string{algorithm.ObjectiveKMedian, algorithm.ObjectiveKCenter} {
		t.Run(objective, func(t *testing.T) {
			w, err := scenario.New(facilityCfg(objective))
			if err != nil {
				t.Fatal(err)
			}
			res := w.Run()
			if res.Repairs == 0 {
				t.Fatal("no repairs")
			}
			reloc := 0
			for _, r := range w.Robots {
				reloc += r.Relocations()
			}
			if reloc == 0 {
				t.Fatal("no robot ever completed a standby relocation")
			}
			t.Logf("%s: %d repairs, %d relocations", objective, res.Repairs, reloc)
		})
	}
}

// TestFacilityDeterministic: the facility family's extra machinery
// (ledger, solver, relocation commands) must not break run-to-run
// determinism.
func TestFacilityDeterministic(t *testing.T) {
	run := func() (int, float64) {
		w, err := scenario.New(facilityCfg(algorithm.ObjectiveKMedian))
		if err != nil {
			t.Fatal(err)
		}
		res := w.Run()
		return res.Repairs, res.TotalTravel
	}
	r1, tr1 := run()
	r2, tr2 := run()
	if r1 != r2 || tr1 != tr2 {
		t.Fatalf("two identical runs diverged: (%d, %v) vs (%d, %v)", r1, tr1, r2, tr2)
	}
}

// TestFacilityFactoryRejectsBadParams: parameter validation happens in
// the factory itself, not only in scenario.Config.Validate, so embedders
// wiring Env by hand get the same errors.
func TestFacilityFactoryRejectsBadParams(t *testing.T) {
	factory, err := algorithm.Lookup(string(algorithm.Facility))
	if err != nil {
		t.Fatal(err)
	}
	cases := []algorithm.FacilityParams{
		{Objective: "steiner"},
		{Period: -5},
		{Ledger: -1},
	}
	for _, p := range cases {
		if _, err := factory(&algorithm.Env{Facility: p}); err == nil {
			t.Errorf("factory accepted bad params %+v", p)
		}
	}
}
