package algorithm

// The paper's three coordination algorithms (Mei et al. §3.1–3.3),
// expressed as registered strategies. The wiring here reproduces the
// pre-registry scenario construction exactly — same policies, same
// update modes, same robot-placement draws in the same order — which the
// golden bit-identity regression locks down.

import (
	"roborepair/internal/core"
	"roborepair/internal/geom"
	"roborepair/internal/node"
	"roborepair/internal/radio"
	"roborepair/internal/robot"
	"roborepair/internal/sim"
)

func init() {
	Register(string(core.Centralized), newCentralized)
	Register(string(core.Fixed), newFixed)
	Register(string(core.Dynamic), newDynamic)
}

// uniformStart draws a uniform robot position from the deployment
// stream — two draws (x then y), matching the paper's random placement.
func uniformStart(env *Env) geom.Point {
	side := env.side()
	return geom.Pt(env.Deploy.Uniform(0, side), env.Deploy.Uniform(0, side))
}

// centralized is §3.1: a static manager at the field center receives
// every report and forwards each to the closest robot.
type centralized struct {
	env *Env
	mgr *core.Manager
}

func newCentralized(env *Env) (Strategy, error) {
	mgr := core.NewManager(env.ManagerID, env.Bounds.Center(), env.RobotRange, env.Medium, env.ManagerHooks)
	if env.RelEnabled {
		mgr.SetReliability(env.ManagerRel)
	}
	return &centralized{env: env, mgr: mgr}, nil
}

func (s *centralized) Policy() node.Policy {
	return core.CentralizedPolicy{ManagerID: s.env.ManagerID}
}

func (s *centralized) UpdateMode() robot.UpdateMode {
	return core.CentralizedUpdate{ManagerID: s.env.ManagerID, ManagerLoc: s.env.Bounds.Center()}
}

func (s *centralized) Manager() *core.Manager      { return s.mgr }
func (s *centralized) CentralDispatch() bool       { return true }
func (s *centralized) RobotStart(i int) geom.Point { return uniformStart(s.env) }
func (s *centralized) Start(sim.Duration)          {}

// fixed is §3.2: the field is partitioned into equal subareas, one
// robot per subarea, each both manager and maintainer for its cell.
type fixed struct {
	env *Env
}

func newFixed(env *Env) (Strategy, error) {
	return &fixed{env: env}, nil
}

func (s *fixed) Policy() node.Policy {
	home := make(map[radio.NodeID]int, len(s.env.RobotIDs))
	for i, id := range s.env.RobotIDs {
		home[id] = i
	}
	return core.FixedPolicy{Partition: s.env.Partition, Home: home}
}

func (s *fixed) UpdateMode() robot.UpdateMode { return core.FloodUpdate{} }
func (s *fixed) Manager() *core.Manager       { return nil }
func (s *fixed) CentralDispatch() bool        { return false }

// RobotStart places robot i at its subarea center ("the robots first
// move to the centers of their corresponding subareas") — no draw.
func (s *fixed) RobotStart(i int) geom.Point { return s.env.Partition.Centers[i] }
func (s *fixed) Start(sim.Duration)          {}

// dynamic is §3.3: implicit Voronoi cells maintained by message
// passing; sensors adopt the closest robot they have heard of.
type dynamic struct {
	env *Env
}

func newDynamic(env *Env) (Strategy, error) {
	return &dynamic{env: env}, nil
}

func (s *dynamic) Policy() node.Policy          { return core.DynamicPolicy{} }
func (s *dynamic) UpdateMode() robot.UpdateMode { return core.FloodUpdate{} }
func (s *dynamic) Manager() *core.Manager       { return nil }
func (s *dynamic) CentralDispatch() bool        { return false }
func (s *dynamic) RobotStart(i int) geom.Point  { return uniformStart(s.env) }
func (s *dynamic) Start(sim.Duration)           {}
