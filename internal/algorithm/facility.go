package algorithm

// Facility-location mule coordination (Hermelin et al., arXiv:1702.04142),
// the fourth registered family. A central manager receives reports and
// dispatches as in §3.1, but additionally maintains a bounded ledger of
// recent failure sites and, on a fixed cadence, re-solves a k-median (or
// k-center) facility-location instance over it — k being the number of
// currently idle robots. Idle robots are then commanded to park at the
// computed facilities, so by the time the next failure in a hot region is
// reported, a robot is already nearby; dispatch itself picks the robot
// nearest the facility that covers the failure. Busy robots are never
// touched, and a repair task always preempts a relocation in flight.

import (
	"fmt"
	"math"

	"roborepair/internal/core"
	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/node"
	"roborepair/internal/radio"
	"roborepair/internal/robot"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// Facility is the registered name of the facility-location family.
const Facility core.Algorithm = "facility"

func init() {
	Register(string(Facility), newFacility)
}

// Facility objective names.
const (
	ObjectiveKMedian = "kmedian"
	ObjectiveKCenter = "kcenter"
)

// Default cadence and ledger bound. 500 s is a few robot traversals of a
// paper-sized subarea — fast enough to track drift in the failure
// distribution, slow enough that parked robots are not perpetually in
// transit. 64 sites keeps the solver O(k·n) cheap while remembering far
// more history than the robot count.
const (
	defaultFacilityPeriod = 500.0
	defaultFacilityLedger = 64
)

// relocateSkipFrac sizes the churn-suppression threshold: a relocation
// command is skipped while the robot stands within this fraction of the
// per-robot field scale (√(area/robots)) of its assigned facility. The
// solved medians drift with every ledger update — the ledger is a
// sliding sample — so a tight threshold would keep parked robots
// perpetually commuting after sampling noise; a quarter of the robot's
// own service radius damps that churn while still correcting genuinely
// stale placements. At the paper's constant 200 m × 200 m per robot this
// is 50 m.
const relocateSkipFrac = 0.25

// FacilityParams tunes the family. Zero values select the defaults.
type FacilityParams struct {
	// Objective is "kmedian" (default) or "kcenter".
	Objective string
	// Period is the re-solve cadence in seconds (default 500).
	Period float64
	// Ledger caps the failure-site ledger, FIFO-evicted (default 64).
	Ledger int
}

// Validate rejects unknown objectives and negative knobs.
func (p FacilityParams) Validate() error {
	switch p.Objective {
	case "", ObjectiveKMedian, ObjectiveKCenter:
	default:
		return fmt.Errorf("algorithm: unknown facility objective %q (want %s or %s)",
			p.Objective, ObjectiveKMedian, ObjectiveKCenter)
	}
	if p.Period < 0 {
		return fmt.Errorf("algorithm: facility period %v negative", p.Period)
	}
	if p.Ledger < 0 {
		return fmt.Errorf("algorithm: facility ledger %d negative", p.Ledger)
	}
	return nil
}

type facility struct {
	env *Env
	mgr *core.Manager

	objective string
	period    sim.Duration
	ledgerCap int
	skip      float64 // churn-suppression distance, see relocateSkipFrac

	ledger     []geom.Point // recent failure sites, FIFO-bounded
	facilities []geom.Point // last solved placement
	relocSeq   uint64       // monotonic across all relocation commands
}

func newFacility(env *Env) (Strategy, error) {
	if err := env.Facility.Validate(); err != nil {
		return nil, err
	}
	s := &facility{
		env:       env,
		objective: env.Facility.Objective,
		period:    sim.Duration(env.Facility.Period),
		ledgerCap: env.Facility.Ledger,
	}
	if s.objective == "" {
		s.objective = ObjectiveKMedian
	}
	if s.period <= 0 {
		s.period = defaultFacilityPeriod
	}
	if s.ledgerCap <= 0 {
		s.ledgerCap = defaultFacilityLedger
	}
	if n := len(env.RobotIDs); n > 0 {
		s.skip = relocateSkipFrac * math.Sqrt(env.Bounds.Area()/float64(n))
	}
	// Wrap the world's report hook to feed the ledger; the world's own
	// accounting still runs.
	hooks := env.ManagerHooks
	observe := hooks.OnReportReceived
	hooks.OnReportReceived = func(rep wire.FailureReport, hops int) {
		s.note(rep.Loc)
		if observe != nil {
			observe(rep, hops)
		}
	}
	s.mgr = core.NewManager(env.ManagerID, env.Bounds.Center(), env.RobotRange, env.Medium, hooks)
	if env.RelEnabled {
		s.mgr.SetReliability(env.ManagerRel)
	}
	s.mgr.SetSelector(s.selectRobot)
	return s, nil
}

func (s *facility) Policy() node.Policy {
	return core.CentralizedPolicy{ManagerID: s.env.ManagerID}
}

func (s *facility) UpdateMode() robot.UpdateMode {
	return core.CentralizedUpdate{ManagerID: s.env.ManagerID, ManagerLoc: s.env.Bounds.Center()}
}

func (s *facility) Manager() *core.Manager      { return s.mgr }
func (s *facility) CentralDispatch() bool       { return true }
func (s *facility) RobotStart(i int) geom.Point { return uniformStart(s.env) }

// Start arms the periodic re-solver after the fleet has announced
// itself; the first solve happens one period past initDelay.
func (s *facility) Start(initDelay sim.Duration) {
	if _, err := s.env.Sched.NewTicker(initDelay+s.period, s.period, s.resolve); err != nil {
		panic(err) // unreachable: the period is forced positive above
	}
}

// note appends a failure site to the ledger, FIFO-evicting past the cap.
func (s *facility) note(loc geom.Point) {
	s.ledger = append(s.ledger, loc)
	if len(s.ledger) > s.ledgerCap {
		s.ledger = s.ledger[len(s.ledger)-s.ledgerCap:]
	}
}

// selectRobot is the pluggable dispatch rule: dispatch the idle robot
// nearest the failure (ties to the lowest ID). The facility placement
// does its work *before* dispatch — idle robots stand parked at the
// solved facilities, so "nearest idle robot" is "the robot covering
// this failure's hot region". Busy robots are never chosen: the paper's
// closest-robot rule piles work onto a loaded robot that happens to sit
// nearby, while a parked one a little farther out is free now. With no
// idle robot the selector declines and the manager's built-in policy
// applies.
func (s *facility) selectRobot(loc geom.Point, robots []core.RobotView) (radio.NodeID, bool) {
	found := false
	var best core.RobotView
	bestD := 0.0
	for _, v := range robots {
		if v.Load != 0 {
			continue
		}
		d := v.Loc.Dist2(loc)
		if !found || d < bestD || (d == bestD && v.ID < best.ID) {
			best, bestD, found = v, d, true
		}
	}
	return best.ID, found
}

// resolve re-solves the facility-location instance over the ledger and
// commands idle robots to their facilities. It is a no-op while the
// manager is crashed or deposed (an elected mobile manager runs the
// paper's dispatch without facility placement), or while there is
// nothing to learn from (no failures yet) or no robot free to move.
func (s *facility) resolve() {
	if !s.mgr.Active() || len(s.ledger) == 0 {
		return
	}
	views := s.mgr.RobotViews()
	idle := views[:0:0]
	for _, v := range views {
		if v.Load == 0 {
			idle = append(idle, v)
		}
	}
	if len(idle) == 0 {
		return
	}
	// Warm-start the k-median from the previous placement whenever the
	// facility count is unchanged: the ledger is a sliding window, so a
	// cold solve jumps to a fresh configuration every period and the idle
	// fleet commutes after it. Refining the previous solution instead
	// converges to a stable fixed point of the window, and robots that
	// are already parked stay parked.
	var fac []geom.Point
	switch {
	case s.objective == ObjectiveKCenter:
		fac = geom.KCenter(s.ledger, len(idle))
	case len(s.facilities) == len(idle):
		fac = geom.KMedianFrom(s.ledger, s.facilities)
	default:
		fac = geom.KMedian(s.ledger, len(idle))
	}
	s.facilities = fac
	// Greedy assignment in facility index order: each facility takes the
	// nearest unassigned idle robot (ties to the lowest ID).
	assigned := make([]bool, len(idle))
	for _, f := range fac {
		best := -1
		var bestD float64
		for i, v := range idle {
			if assigned[i] {
				continue
			}
			d := v.Loc.Dist2(f)
			if best < 0 || d < bestD || (d == bestD && v.ID < idle[best].ID) {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break // more facilities than idle robots (clamped k, still possible)
		}
		assigned[best] = true
		v := idle[best]
		if v.Loc.Dist(f) <= s.skip {
			continue // already parked there
		}
		s.relocSeq++
		s.mgr.Router().Originate(netstack.Packet{
			Dst:      v.ID,
			DstLoc:   v.Loc,
			Category: metrics.CatRelocate,
			Payload:  wire.Relocate{Robot: v.ID, Dest: f, Seq: s.relocSeq},
		})
	}
}
