// Package algorithm is the coordination-strategy registry: every repair
// algorithm — the paper's three (§3.1–3.3) and extensions from the
// related literature — registers a named factory here, and the scenario
// layer builds whichever one Config.Algorithm names. Registering is all
// an algorithm has to do to appear in every CLI enumeration (sweeps,
// figures, invariant grids) and to be exercised by the cross-algorithm
// conformance suite (determinism, checkpoint round-trip, chaos
// cleanliness) for free.
package algorithm

import (
	"fmt"
	"sort"
	"strings"

	"roborepair/internal/core"
	"roborepair/internal/geom"
	"roborepair/internal/node"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
	"roborepair/internal/robot"
	"roborepair/internal/sim"
)

// Env is everything the scenario layer hands a strategy factory: the
// wired medium and scheduler, the field geometry, the reserved IDs, and
// the observation hooks the world wants installed on a central manager.
// Deploy is nil at factory time — the scenario sets it before the first
// RobotStart call, preserving the seed-stream creation order that
// bit-identical replay depends on.
type Env struct {
	Medium    *radio.Medium
	Sched     *sim.Scheduler
	Bounds    geom.Rect
	Partition *geom.Partition
	// RobotIDs are the reserved robot addresses in deployment order;
	// ManagerID is the reserved address of a central manager station
	// (used only by strategies that build one).
	RobotIDs  []radio.NodeID
	ManagerID radio.NodeID
	// RobotRange is the robot/manager transmission range (meters).
	RobotRange float64
	// ManagerHooks are the world's observation callbacks for a central
	// manager; strategies may wrap them but must still invoke them.
	ManagerHooks core.ManagerHooks
	// RelEnabled and ManagerRel carry the reliability extension's manager
	// knobs; ManagerRel is meaningful only when RelEnabled.
	RelEnabled bool
	ManagerRel core.ManagerReliability
	// Deploy is the robot-placement random stream (shared with sensor
	// deployment; draws must happen in RobotStart call order).
	Deploy *rng.Source
	// Facility tunes the facility-location family; other strategies
	// ignore it.
	Facility FacilityParams
}

// side returns the square field's side length.
func (e *Env) side() float64 { return e.Bounds.Width() }

// Strategy is one coordination algorithm, wired and ready for the
// scenario layer to deploy. The scenario calls the accessors exactly
// once each during construction, RobotStart once per robot in ID order,
// and Start after every station is attached.
type Strategy interface {
	// Policy is the sensor-side relay/report policy.
	Policy() node.Policy
	// UpdateMode is how robots disseminate location updates.
	UpdateMode() robot.UpdateMode
	// Manager returns the central manager station, or nil for fully
	// distributed strategies. The scenario attaches and starts it.
	Manager() *core.Manager
	// CentralDispatch reports whether a central manager owns dispatch:
	// sensors report to it, robots heartbeat to it, and stranded-task
	// failover goes through its re-dispatch machinery rather than peer
	// requeueing.
	CentralDispatch() bool
	// RobotStart returns robot i's deployment position. Implementations
	// that place robots randomly must draw exactly from Env.Deploy, in
	// call order.
	RobotStart(i int) geom.Point
	// Start arms any strategy-owned periodic work (e.g. the facility
	// re-solver). Called once, after the manager and all robots have
	// started; the paper's three strategies do nothing here.
	Start(initDelay sim.Duration)
}

// Factory builds a strategy against a wired environment.
type Factory func(env *Env) (Strategy, error)

var registry = map[string]Factory{}

// Register adds a named strategy factory. It panics on an empty name or
// a duplicate registration — both are programmer errors that must fail
// loudly at init time, not surface as a silently shadowed algorithm.
func Register(name string, f Factory) {
	if name == "" {
		panic("algorithm: Register with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("algorithm: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("algorithm: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Lookup returns the factory registered under name. Unknown names fail
// with a message listing every registered algorithm, so a typo in a
// config or CLI flag is self-explaining.
func Lookup(name string) (Factory, error) {
	if f, ok := registry[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("algorithm: unknown algorithm %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// Names enumerates the registered algorithms in sorted (deterministic)
// order — the order CLIs present and sweeps iterate.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered algorithm as core.Algorithm values in
// Names order, for grids and sweeps.
func All() []core.Algorithm {
	names := Names()
	out := make([]core.Algorithm, len(names))
	for i, n := range names {
		out[i] = core.Algorithm(n)
	}
	return out
}

// Parse validates s against the registry and returns it as an
// Algorithm. It accepts exactly the registered names (the legacy
// Centralized/Fixed/Dynamic constants are registered names, so they
// keep resolving).
func Parse(s string) (core.Algorithm, error) {
	if _, err := Lookup(s); err != nil {
		return "", err
	}
	return core.Algorithm(s), nil
}
