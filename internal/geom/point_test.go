package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	a, b := Pt(1, 2), Pt(3, 5)
	if got := a.Add(b); !got.Eq(Pt(4, 7)) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Eq(Pt(2, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(3); !got.Eq(Pt(3, 6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 13 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -1 {
		t.Errorf("Cross = %v", got)
	}
}

func TestPointDistances(t *testing.T) {
	a, b := Pt(0, 0), Pt(3, 4)
	if !almostEq(a.Dist(b), 5) {
		t.Errorf("Dist = %v", a.Dist(b))
	}
	if !almostEq(a.Dist2(b), 25) {
		t.Errorf("Dist2 = %v", a.Dist2(b))
	}
	if !almostEq(b.Norm(), 5) {
		t.Errorf("Norm = %v", b.Norm())
	}
}

func TestPointMidLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Mid(b); !got.Eq(Pt(5, 10)) {
		t.Errorf("Mid = %v", got)
	}
	if got := a.Lerp(b, 0.25); !got.Eq(Pt(2.5, 5)) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestPointUnit(t *testing.T) {
	u := Pt(0, 0).Unit(Pt(0, 7))
	if !almostEq(u.X, 0) || !almostEq(u.Y, 1) {
		t.Errorf("Unit = %v", u)
	}
	if z := Pt(1, 1).Unit(Pt(1, 1)); !z.Eq(Pt(0, 0)) {
		t.Errorf("Unit of identical points = %v, want zero", z)
	}
}

func TestPointAngle(t *testing.T) {
	if a := Pt(0, 0).Angle(Pt(1, 0)); !almostEq(a, 0) {
		t.Errorf("Angle east = %v", a)
	}
	if a := Pt(0, 0).Angle(Pt(0, 1)); !almostEq(a, math.Pi/2) {
		t.Errorf("Angle north = %v", a)
	}
}

func TestPointNear(t *testing.T) {
	if !Pt(0, 0).Near(Pt(0, 0.5), 0.5) {
		t.Error("Near should include boundary")
	}
	if Pt(0, 0).Near(Pt(0, 0.51), 0.5) {
		t.Error("Near false positive")
	}
}

func TestOrientation(t *testing.T) {
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(1, 1)) != 1 {
		t.Error("left turn should be +1")
	}
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(1, -1)) != -1 {
		t.Error("right turn should be -1")
	}
	if Orientation(Pt(0, 0), Pt(1, 1), Pt(2, 2)) != 0 {
		t.Error("collinear should be 0")
	}
}

func TestNearest(t *testing.T) {
	sites := []Point{Pt(0, 0), Pt(10, 0), Pt(5, 5)}
	if got := Nearest(Pt(9, 1), sites); got != 1 {
		t.Errorf("Nearest = %d, want 1", got)
	}
	if got := Nearest(Pt(0, 0), nil); got != -1 {
		t.Errorf("Nearest(empty) = %d, want -1", got)
	}
	// Tie resolves to the lowest index.
	if got := Nearest(Pt(5, 0), []Point{Pt(0, 0), Pt(10, 0)}); got != 0 {
		t.Errorf("tie broke to %d, want 0", got)
	}
}

func TestPropertyDistSymmetricNonNegative(t *testing.T) {
	prop := func(ax, ay, bx, by int16) bool {
		a, b := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		return a.Dist(b) >= 0 && almostEq(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDist2MatchesDistSquared(t *testing.T) {
	prop := func(ax, ay, bx, by int16) bool {
		a, b := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) < 1e-6*(1+d*d)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
