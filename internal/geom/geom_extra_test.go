package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLerpExtrapolates(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	if got := a.Lerp(b, 2); !got.Eq(Pt(20, 0)) {
		t.Fatalf("Lerp(2) = %v", got)
	}
	if got := a.Lerp(b, -1); !got.Eq(Pt(-10, 0)) {
		t.Fatalf("Lerp(-1) = %v", got)
	}
}

func TestRegularPolygonPhase(t *testing.T) {
	// Phase rotates the first vertex.
	p0 := RegularPolygon(Pt(0, 0), 1, 4, 0)
	p90 := RegularPolygon(Pt(0, 0), 1, 4, math.Pi/2)
	if !p0[0].Near(Pt(1, 0), 1e-9) {
		t.Fatalf("phase 0 first vertex = %v", p0[0])
	}
	if !p90[0].Near(Pt(0, 1), 1e-9) {
		t.Fatalf("phase π/2 first vertex = %v", p90[0])
	}
	if !almostEq(p0.Area(), p90.Area()) {
		t.Fatal("rotation changed area")
	}
}

func TestRectCornersCCW(t *testing.T) {
	c := Square(Pt(0, 0), 2).Corners()
	if !c[0].Eq(Pt(0, 0)) || !c[1].Eq(Pt(2, 0)) || !c[2].Eq(Pt(2, 2)) || !c[3].Eq(Pt(0, 2)) {
		t.Fatalf("corners = %v", c)
	}
}

func TestBisectorOrientation(t *testing.T) {
	// The half-plane of Bisector(a,b) contains a, not b.
	a, b := Pt(3, 7), Pt(20, -4)
	h := Bisector(a, b)
	if h.Side(a) <= 0 {
		t.Fatal("bisector half-plane should contain a")
	}
	if h.Side(b) >= 0 {
		t.Fatal("bisector half-plane should exclude b")
	}
}

func TestRectString(t *testing.T) {
	if s := Square(Pt(0, 0), 1).String(); s == "" {
		t.Fatal("empty rect string")
	}
	if s := Pt(1, 2).String(); s != "(1.00, 2.00)" {
		t.Fatalf("point string = %q", s)
	}
}

// Property: a Voronoi cell of site i contains exactly the probes whose
// nearest site is i (up to boundary epsilon).
func TestPropertyVoronoiCellMatchesNearest(t *testing.T) {
	prop := func(seed int64) bool {
		src := newRandPoints(seed, 6, 100)
		bounds := Square(Pt(0, 0), 100)
		cells := VoronoiCells(src, bounds)
		probes := newRandPoints(seed+1, 40, 100)
		for _, p := range probes {
			owner := Nearest(p, src)
			// Skip probes near a boundary between cells.
			d0 := p.Dist(src[owner])
			ambiguous := false
			for j, s := range src {
				if j != owner && math.Abs(p.Dist(s)-d0) < 0.5 {
					ambiguous = true
				}
			}
			if ambiguous {
				continue
			}
			if !cells[owner].Contains(p) {
				return false
			}
			for j, c := range cells {
				if j != owner && c.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newRandPoints(seed int64, n int, side float64) []Point {
	// Simple LCG to avoid importing rng (would be an import cycle for the
	// geom tests? no cycle, but keep geom self-contained).
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	out := make([]Point, n)
	for i := range out {
		out[i] = Pt(next()*side, next()*side)
	}
	return out
}

// Property: the convex hull area is at least the area of any triangle of
// input points.
func TestPropertyHullAreaDominatesTriangles(t *testing.T) {
	prop := func(seed int64) bool {
		pts := newRandPoints(seed, 10, 50)
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return true
		}
		ha := hull.Area()
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				for k := j + 1; k < len(pts); k++ {
					tri := Polygon{pts[i], pts[j], pts[k]}
					if tri.Area() > ha+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: clipping a polygon by complementary half-planes partitions its
// area.
func TestPropertyClipPartitionsArea(t *testing.T) {
	prop := func(nxRaw, nyRaw int8, offRaw int8) bool {
		nx, ny := float64(nxRaw), float64(nyRaw)
		if nx == 0 && ny == 0 {
			return true
		}
		pg := Square(Pt(-4, -4), 8).Polygon()
		off := float64(offRaw) / 16
		left := pg.Clip(HalfPlane{Normal: Pt(nx, ny), Offset: off})
		right := pg.Clip(HalfPlane{Normal: Pt(-nx, -ny), Offset: -off})
		var la, ra float64
		if left != nil {
			la = left.Area()
		}
		if right != nil {
			ra = right.Area()
		}
		return math.Abs(la+ra-pg.Area()) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
