// Package geom provides the 2-D computational geometry the coordination
// algorithms rest on: distances, rectangles, polygon clipping, Voronoi
// cells, Gabriel-graph planarization (for face routing) and the square /
// hexagonal area partitions of the fixed distributed algorithm.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D sensor field, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. Prefer it
// for comparisons on hot paths (neighbor scans, Voronoi assignment).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of segment pq.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Unit returns the unit vector pointing from p toward q. If p == q it
// returns the zero vector.
func (p Point) Unit(q Point) Point {
	d := p.Dist(q)
	if d == 0 {
		return Point{}
	}
	return Point{(q.X - p.X) / d, (q.Y - p.Y) / d}
}

// Angle returns the angle of the vector from p to q in radians, in (−π, π].
func (p Point) Angle(q Point) float64 { return math.Atan2(q.Y-p.Y, q.X-p.X) }

// Eq reports exact equality of coordinates.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Near reports whether p and q are within eps of each other.
func (p Point) Near(q Point, eps float64) bool { return p.Dist(q) <= eps }

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Orientation classifies the turn a→b→c: +1 counter-clockwise, −1
// clockwise, 0 collinear (within eps of area).
func Orientation(a, b, c Point) int {
	cross := b.Sub(a).Cross(c.Sub(a))
	const eps = 1e-12
	switch {
	case cross > eps:
		return 1
	case cross < -eps:
		return -1
	default:
		return 0
	}
}

// Nearest returns the index of the point in sites closest to p, or −1 for
// an empty slice. Ties resolve to the lowest index, keeping the result
// deterministic.
func Nearest(p Point, sites []Point) int {
	best, bestD := -1, math.Inf(1)
	for i, s := range sites {
		if d := p.Dist2(s); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
