package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquarePartition4(t *testing.T) {
	bounds := Square(Pt(0, 0), 400)
	pt, err := NewPartition(PartitionSquare, bounds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.K() != 4 {
		t.Fatalf("K = %d", pt.K())
	}
	wantCenters := map[Point]bool{
		Pt(100, 100): true, Pt(300, 100): true,
		Pt(100, 300): true, Pt(300, 300): true,
	}
	for _, c := range pt.Centers {
		if !wantCenters[c] {
			t.Fatalf("unexpected center %v", c)
		}
	}
	for _, cell := range pt.Cells {
		if !almostEq(cell.Area(), 200*200) {
			t.Fatalf("cell area = %v, want 40000", cell.Area())
		}
	}
}

func TestSquarePartition9And16(t *testing.T) {
	for _, k := range []int{9, 16} {
		side := 200.0 * float64(isqrt(k))
		bounds := Square(Pt(0, 0), side)
		pt, err := NewPartition(PartitionSquare, bounds, k)
		if err != nil {
			t.Fatal(err)
		}
		if pt.K() != k {
			t.Fatalf("k=%d: K = %d", k, pt.K())
		}
		var sum float64
		for _, cell := range pt.Cells {
			sum += cell.Area()
		}
		if !almostEq(sum, bounds.Area()) {
			t.Fatalf("k=%d: cells cover %v of %v", k, sum, bounds.Area())
		}
	}
}

func isqrt(n int) int {
	for i := 1; i <= n; i++ {
		if i*i == n {
			return i
		}
	}
	return 0
}

func TestPartitionOwnerMatchesCell(t *testing.T) {
	bounds := Square(Pt(0, 0), 600)
	pt, err := NewPartition(PartitionSquare, bounds, 9)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := Pt(r.Float64()*600, r.Float64()*600)
		owner := pt.OwnerOf(p)
		if !pt.Cells[owner].Contains(p) {
			t.Fatalf("owner cell %d does not contain %v", owner, p)
		}
	}
}

func TestHexPartitionCoversField(t *testing.T) {
	bounds := Square(Pt(0, 0), 800)
	pt, err := NewPartition(PartitionHex, bounds, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pt.K() != 16 {
		t.Fatalf("K = %d", pt.K())
	}
	var sum float64
	for i, cell := range pt.Cells {
		if cell == nil {
			t.Fatalf("hex cell %d is nil", i)
		}
		sum += cell.Area()
	}
	if !almostEq(sum/bounds.Area(), 1) {
		t.Fatalf("hex cells cover %v of %v", sum, bounds.Area())
	}
	for i, c := range pt.Centers {
		if !bounds.Contains(c) {
			t.Fatalf("hex center %d = %v outside field", i, c)
		}
		if !pt.Cells[i].Contains(c) {
			t.Fatalf("hex cell %d does not contain its center", i)
		}
	}
}

func TestHexPartitionOffsetsAlternateRows(t *testing.T) {
	bounds := Square(Pt(0, 0), 400)
	pt, err := NewPartition(PartitionHex, bounds, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 centers have x=100,300; row 1 are offset by half a cell.
	if pt.Centers[0].X == pt.Centers[2].X {
		t.Fatalf("rows not offset: %v vs %v", pt.Centers[0], pt.Centers[2])
	}
}

func TestPartitionErrors(t *testing.T) {
	bounds := Square(Pt(0, 0), 100)
	if _, err := NewPartition(PartitionSquare, bounds, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewPartition(PartitionSquare, bounds, -3); err == nil {
		t.Error("negative k should fail")
	}
	if _, err := NewPartition(PartitionKind(99), bounds, 4); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestPartitionKindString(t *testing.T) {
	if PartitionSquare.String() != "square" {
		t.Error("square name")
	}
	if PartitionHex.String() != "hex" {
		t.Error("hex name")
	}
	if PartitionKind(42).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestGridShapeNonSquareCounts(t *testing.T) {
	bounds := Square(Pt(0, 0), 100)
	for _, k := range []int{2, 6, 12} {
		pt, err := NewPartition(PartitionSquare, bounds, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if pt.K() != k {
			t.Fatalf("k=%d produced %d cells", k, pt.K())
		}
	}
}

// Property: for any k up to 25, the square partition tiles the field (areas
// sum to the field area) and each cell contains its own center.
func TestPropertySquarePartitionTiles(t *testing.T) {
	prop := func(kRaw uint8) bool {
		k := int(kRaw%25) + 1
		bounds := Square(Pt(0, 0), 500)
		pt, err := NewPartition(PartitionSquare, bounds, k)
		if err != nil {
			return false
		}
		var sum float64
		for i, cell := range pt.Cells {
			if !cell.Contains(pt.Centers[i]) {
				return false
			}
			sum += cell.Area()
		}
		return almostEq(sum/bounds.Area(), 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
