package geom

import (
	"math"
	"testing"
)

func TestKMedianEmptyAndDegenerate(t *testing.T) {
	if got := KMedian(nil, 3); got != nil {
		t.Fatalf("KMedian(nil) = %v, want nil", got)
	}
	if got := KMedian([]Point{Pt(1, 2)}, 0); got != nil {
		t.Fatalf("KMedian(k=0) = %v, want nil", got)
	}
	// k exceeding the demand count clamps: every demand is a facility.
	pts := []Point{Pt(0, 0), Pt(10, 0)}
	got := KMedian(pts, 5)
	if len(got) != 2 {
		t.Fatalf("KMedian clamp: got %d facilities, want 2", len(got))
	}
	// All-coincident demands yield a single facility.
	same := []Point{Pt(3, 3), Pt(3, 3), Pt(3, 3)}
	got = KMedian(same, 2)
	if len(got) != 1 || got[0] != Pt(3, 3) {
		t.Fatalf("KMedian coincident = %v, want [ (3,3) ]", got)
	}
}

func TestKMedianSingleClusterFindsMedian(t *testing.T) {
	// Symmetric cross around (5,5): geometric median is the center.
	pts := []Point{Pt(5, 0), Pt(5, 10), Pt(0, 5), Pt(10, 5)}
	got := KMedian(pts, 1)
	if len(got) != 1 {
		t.Fatalf("got %d facilities, want 1", len(got))
	}
	if got[0].Dist(Pt(5, 5)) > 1e-3 {
		t.Fatalf("median %v, want ≈(5,5)", got[0])
	}
}

func TestKMedianSeparatesClusters(t *testing.T) {
	// Two tight, well-separated clusters: k=2 must put one facility in
	// each.
	var pts []Point
	for i := 0; i < 5; i++ {
		pts = append(pts, Pt(float64(i), 0))     // cluster A around (2,0)
		pts = append(pts, Pt(100+float64(i), 0)) // cluster B around (102,0)
	}
	got := KMedian(pts, 2)
	if len(got) != 2 {
		t.Fatalf("got %d facilities, want 2", len(got))
	}
	inA, inB := 0, 0
	for _, f := range got {
		switch {
		case f.X < 50:
			inA++
		default:
			inB++
		}
	}
	if inA != 1 || inB != 1 {
		t.Fatalf("facilities %v: want one per cluster", got)
	}
}

func TestKMedianDeterministic(t *testing.T) {
	pts := []Point{
		Pt(1, 7), Pt(42, 3), Pt(8, 8), Pt(8, 8), Pt(19, 61),
		Pt(55, 2), Pt(3, 3), Pt(70, 70), Pt(69, 71), Pt(2, 60),
	}
	a := KMedian(pts, 3)
	b := KMedian(pts, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("facility %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKCenterGreedy(t *testing.T) {
	if got := KCenter(nil, 2); got != nil {
		t.Fatalf("KCenter(nil) = %v, want nil", got)
	}
	// Three well-separated points, k=3: each becomes its own center and
	// the k-center cost drops to zero.
	pts := []Point{Pt(0, 0), Pt(100, 0), Pt(50, 90)}
	got := KCenter(pts, 3)
	if len(got) != 3 {
		t.Fatalf("got %d centers, want 3", len(got))
	}
	if _, max := FacilityCost(pts, got); max != 0 {
		t.Fatalf("k=n cover has max distance %v, want 0", max)
	}
	// Greedy 2-approximation bound: cost(greedy k=2) ≤ 2·OPT. For this
	// instance OPT(k=2) = 51.5… (pair the two closest); just sanity-check
	// the cover radius is at most the pairwise max distance.
	got = KCenter(pts, 2)
	if len(got) != 2 {
		t.Fatalf("got %d centers, want 2", len(got))
	}
	_, max := FacilityCost(pts, got)
	if max <= 0 || max > 110 {
		t.Fatalf("k-center radius %v out of range", max)
	}
}

func TestKCenterFirstSeedIsFirstDemand(t *testing.T) {
	pts := []Point{Pt(9, 9), Pt(0, 0), Pt(20, 20)}
	got := KCenter(pts, 1)
	if len(got) != 1 || got[0] != Pt(9, 9) {
		t.Fatalf("KCenter(k=1) = %v, want [ (9,9) ] (deterministic first seed)", got)
	}
}

func TestFacilityCost(t *testing.T) {
	if sum, max := FacilityCost([]Point{Pt(1, 1)}, nil); sum != 0 || max != 0 {
		t.Fatalf("no facilities: cost (%v,%v), want (0,0)", sum, max)
	}
	demands := []Point{Pt(0, 0), Pt(3, 4), Pt(10, 0)}
	fac := []Point{Pt(0, 0), Pt(10, 0)}
	sum, max := FacilityCost(demands, fac)
	// (0,0)→0, (3,4)→5 (to origin), (10,0)→0.
	if math.Abs(sum-5) > 1e-9 || math.Abs(max-5) > 1e-9 {
		t.Fatalf("cost (%v,%v), want (5,5)", sum, max)
	}
}
