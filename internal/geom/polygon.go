package geom

import "math"

// Polygon is a simple polygon given by its vertices in counter-clockwise
// order. The closing edge from the last vertex back to the first is
// implicit.
type Polygon []Point

// Area returns the polygon's area (always non-negative for a simple
// polygon regardless of winding).
func (pg Polygon) Area() float64 {
	if len(pg) < 3 {
		return 0
	}
	var sum float64
	for i := 0; i < len(pg); i++ {
		j := (i + 1) % len(pg)
		sum += pg[i].Cross(pg[j])
	}
	return math.Abs(sum) / 2
}

// Centroid returns the polygon's centroid; for degenerate polygons it
// returns the vertex average.
func (pg Polygon) Centroid() Point {
	if len(pg) == 0 {
		return Point{}
	}
	var signed float64
	var cx, cy float64
	for i := 0; i < len(pg); i++ {
		j := (i + 1) % len(pg)
		w := pg[i].Cross(pg[j])
		signed += w
		cx += (pg[i].X + pg[j].X) * w
		cy += (pg[i].Y + pg[j].Y) * w
	}
	if math.Abs(signed) < 1e-12 {
		var sx, sy float64
		for _, p := range pg {
			sx += p.X
			sy += p.Y
		}
		n := float64(len(pg))
		return Point{sx / n, sy / n}
	}
	return Point{cx / (3 * signed), cy / (3 * signed)}
}

// Contains reports whether p lies inside or on the boundary of the polygon
// (ray-casting with boundary tolerance).
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	const eps = 1e-9
	inside := false
	for i := 0; i < len(pg); i++ {
		j := (i + 1) % len(pg)
		a, b := pg[i], pg[j]
		if distPointSegment(p, a, b) <= eps {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// distPointSegment returns the distance from p to segment ab.
func distPointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}

// HalfPlane is the set of points q with Normal·q ≤ Offset.
type HalfPlane struct {
	Normal Point
	Offset float64
}

// Bisector returns the half-plane of points at least as close to a as to
// b — the defining constraint of a's Voronoi cell against site b.
func Bisector(a, b Point) HalfPlane {
	n := b.Sub(a)
	mid := a.Mid(b)
	return HalfPlane{Normal: n, Offset: n.Dot(mid)}
}

// Side reports the signed slack Offset − Normal·p (≥ 0 means inside).
func (h HalfPlane) Side(p Point) float64 { return h.Offset - h.Normal.Dot(p) }

// Clip returns the intersection of the polygon with the half-plane, using
// the Sutherland–Hodgman step. The result may be empty.
func (pg Polygon) Clip(h HalfPlane) Polygon {
	if len(pg) == 0 {
		return nil
	}
	out := make(Polygon, 0, len(pg)+1)
	for i := 0; i < len(pg); i++ {
		cur := pg[i]
		next := pg[(i+1)%len(pg)]
		cs, ns := h.Side(cur), h.Side(next)
		if cs >= 0 {
			out = append(out, cur)
		}
		if (cs > 0 && ns < 0) || (cs < 0 && ns > 0) {
			t := cs / (cs - ns)
			out = append(out, cur.Lerp(next, t))
		}
	}
	if len(out) < 3 {
		return nil
	}
	return out
}

// RegularPolygon returns an n-gon centered at c with circumradius r,
// first vertex at angle phase (radians), counter-clockwise.
func RegularPolygon(c Point, r float64, n int, phase float64) Polygon {
	if n < 3 {
		return nil
	}
	pg := make(Polygon, n)
	for i := 0; i < n; i++ {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		pg[i] = Point{c.X + r*math.Cos(a), c.Y + r*math.Sin(a)}
	}
	return pg
}
