package geom

import (
	"encoding/json"
	"fmt"
	"math"
)

// Area partitions for the fixed distributed manager algorithm. The paper
// partitions the field into k equal squares (one robot each) and notes
// that a hexagonal partition shows "negligible difference" — reproduced
// here as the ABL-HEX ablation.

// PartitionKind selects the fixed algorithm's area partition shape.
type PartitionKind int

const (
	// PartitionSquare tiles the field with equal squares (paper default).
	PartitionSquare PartitionKind = iota + 1
	// PartitionHex tiles the field with a hexagonal lattice of centers;
	// each subarea is the Voronoi cell of its center (a hexagon clipped
	// to the field boundary).
	PartitionHex
)

// String names the partition kind.
func (k PartitionKind) String() string {
	switch k {
	case PartitionSquare:
		return "square"
	case PartitionHex:
		return "hex"
	default:
		return fmt.Sprintf("PartitionKind(%d)", int(k))
	}
}

// MarshalJSON encodes the kind as its name.
func (k PartitionKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes "square" or "hex".
func (k *PartitionKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "square":
		*k = PartitionSquare
	case "hex":
		*k = PartitionHex
	default:
		return fmt.Errorf("geom: unknown partition kind %q", s)
	}
	return nil
}

// Partition is a division of a field into k subareas with one designated
// center (the robot's home position) per subarea.
type Partition struct {
	Bounds  Rect
	Centers []Point
	Cells   []Polygon
}

// OwnerOf returns the index of the subarea containing p. With Voronoi-cell
// subareas this is simply the nearest center.
func (pt *Partition) OwnerOf(p Point) int { return Nearest(p, pt.Centers) }

// K returns the number of subareas.
func (pt *Partition) K() int { return len(pt.Centers) }

// NewPartition divides bounds into k subareas of the given kind. For the
// square kind k must be a perfect square matching a rows×cols grid of the
// (square) field, mirroring the paper's use of k ∈ {4, 9, 16}; for
// non-square k it falls back to the most balanced rows×cols grid.
func NewPartition(kind PartitionKind, bounds Rect, k int) (*Partition, error) {
	if k <= 0 {
		return nil, fmt.Errorf("geom: partition size %d not positive", k)
	}
	switch kind {
	case PartitionSquare:
		return squarePartition(bounds, k), nil
	case PartitionHex:
		return hexPartition(bounds, k), nil
	default:
		return nil, fmt.Errorf("geom: unknown partition kind %d", int(kind))
	}
}

// gridShape picks rows×cols = k with the aspect closest to the field's.
func gridShape(bounds Rect, k int) (rows, cols int) {
	best := math.Inf(1)
	aspect := bounds.Width() / bounds.Height()
	for r := 1; r <= k; r++ {
		if k%r != 0 {
			continue
		}
		c := k / r
		a := float64(c) / float64(r)
		if d := math.Abs(math.Log(a / aspect)); d < best {
			best = d
			rows, cols = r, c
		}
	}
	return rows, cols
}

func squarePartition(bounds Rect, k int) *Partition {
	rows, cols := gridShape(bounds, k)
	w := bounds.Width() / float64(cols)
	h := bounds.Height() / float64(rows)
	pt := &Partition{
		Bounds:  bounds,
		Centers: make([]Point, 0, k),
		Cells:   make([]Polygon, 0, k),
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := Rect{
				Min: Point{bounds.Min.X + float64(c)*w, bounds.Min.Y + float64(r)*h},
				Max: Point{bounds.Min.X + float64(c+1)*w, bounds.Min.Y + float64(r+1)*h},
			}
			pt.Centers = append(pt.Centers, cell.Center())
			pt.Cells = append(pt.Cells, cell.Polygon())
		}
	}
	return pt
}

// hexPartition lays k centers on a hexagonal (offset-row) lattice scaled
// to the field and takes each subarea as the Voronoi cell of its center.
func hexPartition(bounds Rect, k int) *Partition {
	rows, cols := gridShape(bounds, k)
	w := bounds.Width() / float64(cols)
	h := bounds.Height() / float64(rows)
	centers := make([]Point, 0, k)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := bounds.Min.X + (float64(c)+0.5)*w
			if r%2 == 1 {
				// Offset odd rows by half a cell, wrapping inside the field.
				x += w / 2
				if x > bounds.Max.X {
					x -= w
				}
			}
			y := bounds.Min.Y + (float64(r)+0.5)*h
			centers = append(centers, Point{x, y})
		}
	}
	return &Partition{
		Bounds:  bounds,
		Centers: centers,
		Cells:   VoronoiCells(centers, bounds),
	}
}
