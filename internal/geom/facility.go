package geom

import "math"

// Facility-location solvers for mule coordination (Hermelin et al.,
// arXiv:1702.04142): place k facilities over a set of demand points so
// idle robots can park where failures cluster. Two classic objectives
// are provided — k-median (minimize summed distance, solved by
// farthest-point seeding plus Lloyd iterations with Weiszfeld medians)
// and k-center (minimize worst-case distance, solved by the greedy
// 2-approximation). Both are deterministic: no randomness, stable
// iteration order, fixed iteration counts — so same inputs always yield
// the same facilities, which the simulator's bit-identical replay
// machinery depends on.

// facilityIters bounds the Lloyd and Weiszfeld refinement loops. The
// loops converge long before this on realistic ledgers; a fixed bound
// keeps the solver deterministic and O(iters·k·n).
const facilityIters = 32

// weiszfeldEps terminates a Weiszfeld iteration when the step falls
// below this displacement (meters).
const weiszfeldEps = 1e-6

// KMedian places k facilities minimizing the summed Euclidean distance
// from each demand point to its nearest facility. Seeding is
// farthest-point traversal from the first demand (deterministic), then
// Lloyd iterations reassign demands and move each facility to the
// geometric median (Weiszfeld) of its cluster. k is clamped to
// [1, len(demands)]; an empty demand set yields nil.
func KMedian(demands []Point, k int) []Point {
	centers := seedFarthest(demands, k)
	if len(centers) == 0 {
		return nil
	}
	assign := make([]int, len(demands))
	for iter := 0; iter < facilityIters; iter++ {
		if !assignNearest(demands, centers, assign) && iter > 0 {
			break
		}
		for c := range centers {
			centers[c] = geometricMedian(demands, assign, c, centers[c])
		}
	}
	return centers
}

// KMedianFrom is KMedian warm-started from an initial placement instead
// of farthest-point seeding: Lloyd iterations refine the given
// facilities against the demands. Callers re-solving over a sliding
// window of demands use this to keep successive solutions near each
// other (a fixed point of the window) instead of jumping to a fresh
// configuration every solve. The initial slice is not mutated. Empty
// demands or an empty initial placement yield nil.
func KMedianFrom(demands, initial []Point) []Point {
	if len(demands) == 0 || len(initial) == 0 {
		return nil
	}
	centers := append([]Point(nil), initial...)
	assign := make([]int, len(demands))
	for iter := 0; iter < facilityIters; iter++ {
		if !assignNearest(demands, centers, assign) && iter > 0 {
			break
		}
		for c := range centers {
			centers[c] = geometricMedian(demands, assign, c, centers[c])
		}
	}
	return centers
}

// KCenter places k facilities minimizing the maximum Euclidean distance
// from any demand point to its nearest facility, using the greedy
// farthest-point 2-approximation (Gonzalez). k is clamped to
// [1, len(demands)]; an empty demand set yields nil.
func KCenter(demands []Point, k int) []Point {
	return seedFarthest(demands, k)
}

// seedFarthest returns min(k, len(demands)) seeds by farthest-point
// traversal: the first demand, then repeatedly the demand farthest from
// the chosen set. Ties break to the lowest index, so the result is a
// pure function of the input order.
func seedFarthest(demands []Point, k int) []Point {
	if len(demands) == 0 || k < 1 {
		return nil
	}
	if k > len(demands) {
		k = len(demands)
	}
	centers := make([]Point, 0, k)
	centers = append(centers, demands[0])
	// dist2[i] tracks each demand's squared distance to the chosen set.
	dist2 := make([]float64, len(demands))
	for i, d := range demands {
		dist2[i] = d.Dist2(centers[0])
	}
	for len(centers) < k {
		best, bestD := -1, -1.0
		for i, d2 := range dist2 {
			if d2 > bestD {
				best, bestD = i, d2
			}
		}
		if bestD == 0 {
			break // all remaining demands coincide with a chosen center
		}
		centers = append(centers, demands[best])
		for i, d := range demands {
			if d2 := d.Dist2(demands[best]); d2 < dist2[i] {
				dist2[i] = d2
			}
		}
	}
	return centers
}

// assignNearest writes each demand's nearest-center index into assign
// (ties to the lowest center index) and reports whether any assignment
// changed.
func assignNearest(demands, centers []Point, assign []int) bool {
	changed := false
	for i, d := range demands {
		best, bestD2 := 0, d.Dist2(centers[0])
		for c := 1; c < len(centers); c++ {
			if d2 := d.Dist2(centers[c]); d2 < bestD2 {
				best, bestD2 = c, d2
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// geometricMedian returns the Weiszfeld geometric median of the demands
// assigned to cluster c, starting from cur. An empty cluster keeps cur;
// a singleton returns its point. A demand coinciding with the current
// iterate keeps the iterate fixed (the standard singularity guard),
// which is also the correct median when that point carries the cluster.
func geometricMedian(demands []Point, assign []int, c int, cur Point) Point {
	var first Point
	n := 0
	for i, a := range assign {
		if a == c {
			if n == 0 {
				first = demands[i]
			}
			n++
		}
	}
	if n == 0 {
		return cur
	}
	if n == 1 {
		return first
	}
	m := cur
	for iter := 0; iter < facilityIters; iter++ {
		var sx, sy, sw float64
		singular := false
		for i, a := range assign {
			if a != c {
				continue
			}
			d := demands[i].Dist(m)
			if d == 0 {
				singular = true
				continue
			}
			w := 1 / d
			sx += demands[i].X * w
			sy += demands[i].Y * w
			sw += w
		}
		if sw == 0 {
			return m // every demand coincides with the iterate
		}
		next := Pt(sx/sw, sy/sw)
		if singular && next.Dist(m) < weiszfeldEps {
			return m
		}
		if next.Dist(m) < weiszfeldEps {
			return next
		}
		m = next
	}
	return m
}

// FacilityCost returns the summed (k-median) and maximum (k-center)
// distances from each demand to its nearest facility. Both are zero for
// empty inputs.
func FacilityCost(demands, facilities []Point) (sum, max float64) {
	if len(facilities) == 0 {
		return 0, 0
	}
	for _, d := range demands {
		best := d.Dist2(facilities[0])
		for _, f := range facilities[1:] {
			if d2 := d.Dist2(f); d2 < best {
				best = d2
			}
		}
		dist := math.Sqrt(best)
		sum += dist
		if dist > max {
			max = dist
		}
	}
	return sum, max
}
