package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVoronoiTwoSites(t *testing.T) {
	bounds := Square(Pt(0, 0), 10)
	sites := []Point{Pt(2.5, 5), Pt(7.5, 5)}
	cells := VoronoiCells(sites, bounds)
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	if !almostEq(cells[0].Area(), 50) || !almostEq(cells[1].Area(), 50) {
		t.Fatalf("areas = %v, %v; want 50, 50", cells[0].Area(), cells[1].Area())
	}
	if !cells[0].Contains(Pt(1, 5)) || cells[0].Contains(Pt(9, 5)) {
		t.Fatal("left cell membership wrong")
	}
}

func TestVoronoiSingleSiteIsWholeField(t *testing.T) {
	bounds := Square(Pt(0, 0), 4)
	cells := VoronoiCells([]Point{Pt(1, 1)}, bounds)
	if !almostEq(cells[0].Area(), 16) {
		t.Fatalf("single-site cell area = %v, want 16", cells[0].Area())
	}
}

func TestVoronoiCellContainsOwnSite(t *testing.T) {
	bounds := Square(Pt(0, 0), 100)
	r := rand.New(rand.NewSource(1))
	sites := make([]Point, 9)
	for i := range sites {
		sites[i] = Pt(r.Float64()*100, r.Float64()*100)
	}
	cells := VoronoiCells(sites, bounds)
	for i, c := range cells {
		if c == nil || !c.Contains(sites[i]) {
			t.Fatalf("cell %d does not contain its site %v", i, sites[i])
		}
	}
}

func TestVoronoiAreasSumToField(t *testing.T) {
	bounds := Square(Pt(0, 0), 200)
	r := rand.New(rand.NewSource(2))
	sites := make([]Point, 16)
	for i := range sites {
		sites[i] = Pt(r.Float64()*200, r.Float64()*200)
	}
	cells := VoronoiCells(sites, bounds)
	var sum float64
	for _, c := range cells {
		sum += c.Area()
	}
	if !almostEq(sum/bounds.Area(), 1) {
		t.Fatalf("cell areas sum to %v, field is %v", sum, bounds.Area())
	}
}

func TestVoronoiCoincidentSites(t *testing.T) {
	bounds := Square(Pt(0, 0), 10)
	sites := []Point{Pt(5, 5), Pt(5, 5)}
	// Coincident sites must not produce an empty-everything panic; each
	// ignores its twin and claims the full field.
	cells := VoronoiCells(sites, bounds)
	if cells[0] == nil || cells[1] == nil {
		t.Fatal("coincident sites produced nil cells")
	}
}

func TestVoronoiOwnerMatchesCellMembership(t *testing.T) {
	bounds := Square(Pt(0, 0), 100)
	r := rand.New(rand.NewSource(3))
	sites := make([]Point, 5)
	for i := range sites {
		sites[i] = Pt(r.Float64()*100, r.Float64()*100)
	}
	cells := VoronoiCells(sites, bounds)
	for trial := 0; trial < 500; trial++ {
		p := Pt(r.Float64()*100, r.Float64()*100)
		owner := VoronoiOwner(p, sites)
		if !cells[owner].Contains(p) {
			t.Fatalf("owner cell %d does not contain %v", owner, p)
		}
	}
}

func TestCellChangeRegionMoveTowardProbe(t *testing.T) {
	sites := []Point{Pt(0, 0), Pt(100, 0)}
	probes := []Point{Pt(40, 0), Pt(60, 0), Pt(90, 0)}
	// Move site 0 from (0,0) to (70,0): probes at 40 flips away from site 0?
	// Before: 40→site0, 60→site1, 90→site1. After move to (70,0):
	// 40 → dist 30 vs 60 → site0; 60 → 10 vs 40 → site0; 90 → 20 vs 10 → site1.
	changed := CellChangeRegion(probes, sites, 0, Pt(0, 0), Pt(70, 0))
	want := map[int]bool{1: true}
	if len(changed) != 1 || !want[changed[0]] {
		t.Fatalf("changed = %v, want [1]", changed)
	}
}

func TestCellChangeRegionNoMove(t *testing.T) {
	sites := []Point{Pt(0, 0), Pt(10, 10)}
	probes := []Point{Pt(1, 1), Pt(9, 9)}
	if got := CellChangeRegion(probes, sites, 0, Pt(0, 0), Pt(0, 0)); got != nil {
		t.Fatalf("no-op move changed %v", got)
	}
}

func TestCellChangeRegionBadIndex(t *testing.T) {
	if got := CellChangeRegion([]Point{Pt(0, 0)}, []Point{Pt(1, 1)}, 5, Pt(0, 0), Pt(1, 0)); got != nil {
		t.Fatalf("bad index returned %v", got)
	}
}

// Property: every changed probe is strictly closer to the relevant position
// flip — i.e. membership computed directly agrees with CellChangeRegion.
func TestPropertyCellChangeConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sites := make([]Point, 4)
		for i := range sites {
			sites[i] = Pt(r.Float64()*100, r.Float64()*100)
		}
		probes := make([]Point, 30)
		for i := range probes {
			probes[i] = Pt(r.Float64()*100, r.Float64()*100)
		}
		oldPos := sites[0]
		newPos := Pt(r.Float64()*100, r.Float64()*100)
		changed := CellChangeRegion(probes, sites, 0, oldPos, newPos)
		changedSet := make(map[int]bool, len(changed))
		for _, i := range changed {
			changedSet[i] = true
		}
		before := append([]Point(nil), sites...)
		before[0] = oldPos
		after := append([]Point(nil), sites...)
		after[0] = newPos
		for i, p := range probes {
			flip := (Nearest(p, before) == 0) != (Nearest(p, after) == 0)
			if flip != changedSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVoronoiCells16(b *testing.B) {
	bounds := Square(Pt(0, 0), 800)
	r := rand.New(rand.NewSource(1))
	sites := make([]Point, 16)
	for i := range sites {
		sites[i] = Pt(r.Float64()*800, r.Float64()*800)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VoronoiCells(sites, bounds)
	}
}
