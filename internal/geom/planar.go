package geom

// Planar subgraph construction for face-routing recovery. Greedy
// geographic forwarding can reach a local minimum (a "hole"); GFG/GPSR
// recover by walking the faces of a planar subgraph of the connectivity
// graph. The Gabriel graph and the relative neighborhood graph (RNG) are
// the two classical localized planarizations; both are computed here from
// a node's one-hop neighborhood only, exactly as a real node would.

// GabrielEdge reports whether the edge u–v belongs to the Gabriel graph of
// the point set: no witness point lies strictly inside the circle whose
// diameter is u–v.
func GabrielEdge(u, v Point, witnesses []Point) bool {
	mid := u.Mid(v)
	r2 := u.Dist2(v) / 4
	const eps = 1e-12
	for _, w := range witnesses {
		if w.Eq(u) || w.Eq(v) {
			continue
		}
		if mid.Dist2(w) < r2-eps {
			return false
		}
	}
	return true
}

// RNGEdge reports whether the edge u–v belongs to the relative
// neighborhood graph: no witness w has max(d(u,w), d(v,w)) < d(u,v).
func RNGEdge(u, v Point, witnesses []Point) bool {
	d2 := u.Dist2(v)
	const eps = 1e-12
	for _, w := range witnesses {
		if w.Eq(u) || w.Eq(v) {
			continue
		}
		uw, vw := u.Dist2(w), v.Dist2(w)
		if uw < d2-eps && vw < d2-eps {
			return false
		}
	}
	return true
}

// SegmentsIntersect reports whether closed segments ab and cd share a
// point, including collinear overlap and shared endpoints.
func SegmentsIntersect(a, b, c, d Point) bool {
	o1 := Orientation(a, b, c)
	o2 := Orientation(a, b, d)
	o3 := Orientation(c, d, a)
	o4 := Orientation(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	onSeg := func(p, q, r Point) bool { // r on segment pq, assuming collinear
		return min(p.X, q.X)-1e-12 <= r.X && r.X <= max(p.X, q.X)+1e-12 &&
			min(p.Y, q.Y)-1e-12 <= r.Y && r.Y <= max(p.Y, q.Y)+1e-12
	}
	switch {
	case o1 == 0 && onSeg(a, b, c):
		return true
	case o2 == 0 && onSeg(a, b, d):
		return true
	case o3 == 0 && onSeg(c, d, a):
		return true
	case o4 == 0 && onSeg(c, d, b):
		return true
	}
	return false
}

// SegmentIntersection returns the intersection point of segments ab and cd
// when they cross at a single point (proper intersection), and ok=false
// otherwise.
func SegmentIntersection(a, b, c, d Point) (Point, bool) {
	r := b.Sub(a)
	s := d.Sub(c)
	denom := r.Cross(s)
	if denom == 0 {
		return Point{}, false
	}
	t := c.Sub(a).Cross(s) / denom
	u := c.Sub(a).Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Point{}, false
	}
	return a.Add(r.Scale(t)), true
}
