package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGabrielEdgeBasic(t *testing.T) {
	u, v := Pt(0, 0), Pt(10, 0)
	if !GabrielEdge(u, v, nil) {
		t.Error("edge with no witnesses must be Gabriel")
	}
	// Witness at the midpoint kills the edge.
	if GabrielEdge(u, v, []Point{Pt(5, 0.1)}) {
		t.Error("witness inside diameter circle should kill the edge")
	}
	// Witness outside the circle does not.
	if !GabrielEdge(u, v, []Point{Pt(5, 6)}) {
		t.Error("witness outside circle should not kill the edge")
	}
	// Witness exactly on the circle boundary does not (closed circle test).
	if !GabrielEdge(u, v, []Point{Pt(5, 5)}) {
		t.Error("boundary witness should not kill the edge")
	}
}

func TestGabrielEdgeIgnoresEndpoints(t *testing.T) {
	u, v := Pt(0, 0), Pt(4, 0)
	if !GabrielEdge(u, v, []Point{u, v}) {
		t.Error("endpoints must not act as witnesses")
	}
}

func TestRNGEdgeBasic(t *testing.T) {
	u, v := Pt(0, 0), Pt(10, 0)
	if !RNGEdge(u, v, nil) {
		t.Error("edge with no witnesses must be in RNG")
	}
	// Witness in the lune (close to both) kills the edge.
	if RNGEdge(u, v, []Point{Pt(5, 1)}) {
		t.Error("lune witness should kill the edge")
	}
	// Witness far from one endpoint (outside the lune) does not.
	if !RNGEdge(u, v, []Point{Pt(-3, 0)}) {
		t.Error("witness outside the lune should not kill the edge")
	}
}

func TestRNGSubsetOfGabriel(t *testing.T) {
	// RNG ⊆ Gabriel: any edge in RNG must be in Gabriel.
	r := rand.New(rand.NewSource(4))
	pts := make([]Point, 40)
	for i := range pts {
		pts[i] = Pt(r.Float64()*100, r.Float64()*100)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if RNGEdge(pts[i], pts[j], pts) && !GabrielEdge(pts[i], pts[j], pts) {
				t.Fatalf("edge %d-%d in RNG but not Gabriel", i, j)
			}
		}
	}
}

// Property: the Gabriel graph restricted to any point set is planar — no
// two Gabriel edges properly cross. (Classical result; checked empirically
// on random sets, which is how the routing layer relies on it.)
func TestPropertyGabrielPlanarity(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := make([]Point, 12)
		for i := range pts {
			pts[i] = Pt(r.Float64()*50, r.Float64()*50)
		}
		type edge struct{ a, b int }
		var edges []edge
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if GabrielEdge(pts[i], pts[j], pts) {
					edges = append(edges, edge{i, j})
				}
			}
		}
		for x := 0; x < len(edges); x++ {
			for y := x + 1; y < len(edges); y++ {
				e, f := edges[x], edges[y]
				if e.a == f.a || e.a == f.b || e.b == f.a || e.b == f.b {
					continue // sharing an endpoint is fine
				}
				if SegmentsIntersect(pts[e.a], pts[e.b], pts[f.a], pts[f.b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"cross", Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0), true},
		{"parallel", Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1), false},
		{"touch endpoint", Pt(0, 0), Pt(1, 1), Pt(1, 1), Pt(2, 0), true},
		{"collinear overlap", Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(3, 0), true},
		{"collinear disjoint", Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0), false},
		{"T-junction", Pt(0, 0), Pt(2, 0), Pt(1, -1), Pt(1, 1), true},
		{"near miss", Pt(0, 0), Pt(2, 0), Pt(1, 0.01), Pt(1, 1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentsIntersect(tt.a, tt.b, tt.c, tt.d); got != tt.want {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentIntersection(t *testing.T) {
	p, ok := SegmentIntersection(Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0))
	if !ok || !p.Near(Pt(1, 1), 1e-9) {
		t.Fatalf("intersection = %v, ok=%v", p, ok)
	}
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1)); ok {
		t.Fatal("parallel segments should not intersect")
	}
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(1, 0), Pt(5, -1), Pt(5, 1)); ok {
		t.Fatal("out-of-range intersection accepted")
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), Pt(2, 2), Pt(1, 3)}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices: %v", len(hull), hull)
	}
	if !almostEq(hull.Area(), 16) {
		t.Fatalf("hull area = %v", hull.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Fatalf("hull of empty = %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 1)}); len(h) != 1 {
		t.Fatalf("hull of single point = %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}); len(h) != 1 {
		t.Fatalf("hull of duplicates = %v", h)
	}
	h := ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2)})
	if len(h) > 2 {
		t.Fatalf("hull of collinear points = %v", h)
	}
}

// Property: every input point lies inside or on the hull.
func TestPropertyHullContainsAll(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := make([]Point, 25)
		for i := range pts {
			pts[i] = Pt(r.Float64()*100, r.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return true
		}
		for _, p := range pts {
			if !hull.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
