package geom

import "fmt"

// Rect is an axis-aligned rectangle with Min ≤ Max on both axes.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	r := Rect{Min: a, Max: b}
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Square returns the axis-aligned square with lower-left corner at origin
// and the given side length.
func Square(origin Point, side float64) Rect {
	return Rect{Min: origin, Max: Point{origin.X + side, origin.Y + side}}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's centroid.
func (r Rect) Center() Point { return r.Min.Mid(r.Max) }

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the point in r closest to p.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.Min.X {
		p.X = r.Min.X
	}
	if p.X > r.Max.X {
		p.X = r.Max.X
	}
	if p.Y < r.Min.Y {
		p.Y = r.Min.Y
	}
	if p.Y > r.Max.Y {
		p.Y = r.Max.Y
	}
	return p
}

// Corners returns the four corners in counter-clockwise order starting at
// Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Polygon returns the rectangle as a counter-clockwise polygon.
func (r Rect) Polygon() Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}

// String formats the rectangle as [min → max].
func (r Rect) String() string { return fmt.Sprintf("[%v → %v]", r.Min, r.Max) }
