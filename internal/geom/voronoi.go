package geom

// Voronoi computation by half-plane clipping: the cell of site i inside a
// bounding rectangle is the rectangle clipped against the bisector of
// (i, j) for every other site j. This is O(n) per cell — more than fast
// enough for the handful of robots the paper coordinates (≤ 16) and
// robust, unlike a full Fortune sweep, against the degenerate co-circular
// configurations random deployments produce.

// VoronoiCell returns the Voronoi cell of sites[i] clipped to bounds.
// The result is nil when the cell is empty (possible only for coincident
// sites).
func VoronoiCell(sites []Point, i int, bounds Rect) Polygon {
	cell := bounds.Polygon()
	for j, s := range sites {
		if j == i || s.Eq(sites[i]) {
			continue
		}
		cell = cell.Clip(Bisector(sites[i], s))
		if cell == nil {
			return nil
		}
	}
	return cell
}

// VoronoiCells returns the bounded Voronoi cell of every site.
func VoronoiCells(sites []Point, bounds Rect) []Polygon {
	cells := make([]Polygon, len(sites))
	for i := range sites {
		cells[i] = VoronoiCell(sites, i, bounds)
	}
	return cells
}

// VoronoiOwner returns the index of the site whose cell contains p — the
// nearest site. It is the ground truth the dynamic distributed algorithm
// approximates with message passing.
func VoronoiOwner(p Point, sites []Point) int { return Nearest(p, sites) }

// CellChangeRegion returns the set of probe points (from probes) whose
// nearest site changes when site moved moves from oldPos to newPos. This is
// exactly the region whose sensors must learn about a robot's relocation in
// the dynamic algorithm (the shaded area of the paper's Figure 1).
func CellChangeRegion(probes []Point, sites []Point, moved int, oldPos, newPos Point) []int {
	if moved < 0 || moved >= len(sites) {
		return nil
	}
	before := make([]Point, len(sites))
	copy(before, sites)
	before[moved] = oldPos
	after := make([]Point, len(sites))
	copy(after, sites)
	after[moved] = newPos

	var changed []int
	for i, p := range probes {
		ob := Nearest(p, before) == moved
		oa := Nearest(p, after) == moved
		if ob != oa {
			changed = append(changed, i)
		}
	}
	return changed
}
