package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon {
	return Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 6), Pt(1, 2))
	if !r.Min.Eq(Pt(1, 2)) || !r.Max.Eq(Pt(4, 6)) {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
	if r.Width() != 3 || r.Height() != 4 || r.Area() != 12 {
		t.Fatalf("dims wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if !r.Center().Eq(Pt(2.5, 4)) {
		t.Fatalf("Center = %v", r.Center())
	}
}

func TestRectContainsAndClamp(t *testing.T) {
	r := Square(Pt(0, 0), 10)
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || !r.Contains(Pt(5, 5)) {
		t.Error("Contains should include boundary and interior")
	}
	if r.Contains(Pt(10.01, 5)) {
		t.Error("Contains false positive")
	}
	if got := r.Clamp(Pt(-3, 15)); !got.Eq(Pt(0, 10)) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Pt(4, 4)); !got.Eq(Pt(4, 4)) {
		t.Errorf("Clamp moved interior point: %v", got)
	}
}

func TestRectPolygonIsCCW(t *testing.T) {
	pg := Square(Pt(0, 0), 2).Polygon()
	if len(pg) != 4 {
		t.Fatalf("polygon has %d vertices", len(pg))
	}
	if pg.Area() != 4 {
		t.Fatalf("Area = %v, want 4", pg.Area())
	}
	if Orientation(pg[0], pg[1], pg[2]) != 1 {
		t.Fatal("rect polygon is not counter-clockwise")
	}
}

func TestPolygonArea(t *testing.T) {
	if a := unitSquare().Area(); !almostEq(a, 1) {
		t.Errorf("unit square area = %v", a)
	}
	tri := Polygon{Pt(0, 0), Pt(4, 0), Pt(0, 3)}
	if a := tri.Area(); !almostEq(a, 6) {
		t.Errorf("triangle area = %v", a)
	}
	if a := (Polygon{Pt(0, 0), Pt(1, 1)}).Area(); a != 0 {
		t.Errorf("degenerate area = %v", a)
	}
	// Clockwise winding still yields positive area.
	cw := Polygon{Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0)}
	if a := cw.Area(); !almostEq(a, 1) {
		t.Errorf("cw square area = %v", a)
	}
}

func TestPolygonCentroid(t *testing.T) {
	if c := unitSquare().Centroid(); !c.Near(Pt(0.5, 0.5), 1e-9) {
		t.Errorf("centroid = %v", c)
	}
	if c := (Polygon{}).Centroid(); !c.Eq(Pt(0, 0)) {
		t.Errorf("empty centroid = %v", c)
	}
	// Degenerate (zero area) falls back to vertex average.
	if c := (Polygon{Pt(0, 0), Pt(2, 0)}).Centroid(); !c.Near(Pt(1, 0), 1e-9) {
		t.Errorf("degenerate centroid = %v", c)
	}
}

func TestPolygonContains(t *testing.T) {
	pg := unitSquare()
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(0.5, 0.5), true},
		{Pt(0, 0), true},      // corner
		{Pt(0.5, 0), true},    // edge
		{Pt(1.5, 0.5), false}, // outside right
		{Pt(-0.1, 0.5), false},
		{Pt(0.5, 1.0000001), false},
	}
	for _, tt := range tests {
		if got := pg.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestBisectorHalfPlane(t *testing.T) {
	h := Bisector(Pt(0, 0), Pt(10, 0))
	if h.Side(Pt(1, 0)) <= 0 {
		t.Error("point near a should be inside a's half-plane")
	}
	if h.Side(Pt(9, 0)) >= 0 {
		t.Error("point near b should be outside a's half-plane")
	}
	if !almostEq(h.Side(Pt(5, 123)), 0) {
		t.Error("bisector line should be the zero set")
	}
}

func TestClipHalfSquare(t *testing.T) {
	pg := Square(Pt(0, 0), 2).Polygon()
	// Keep x <= 1.
	clipped := pg.Clip(HalfPlane{Normal: Pt(1, 0), Offset: 1})
	if !almostEq(clipped.Area(), 2) {
		t.Fatalf("clipped area = %v, want 2", clipped.Area())
	}
	for _, p := range clipped {
		if p.X > 1+1e-9 {
			t.Fatalf("vertex %v escaped the half-plane", p)
		}
	}
}

func TestClipToEmpty(t *testing.T) {
	pg := unitSquare()
	if got := pg.Clip(HalfPlane{Normal: Pt(1, 0), Offset: -1}); got != nil {
		t.Fatalf("clip to empty returned %v", got)
	}
	if got := (Polygon{}).Clip(HalfPlane{Normal: Pt(1, 0), Offset: 1}); got != nil {
		t.Fatalf("clip of empty returned %v", got)
	}
}

func TestClipNoOp(t *testing.T) {
	pg := unitSquare()
	got := pg.Clip(HalfPlane{Normal: Pt(1, 0), Offset: 100})
	if !almostEq(got.Area(), 1) {
		t.Fatalf("no-op clip changed area to %v", got.Area())
	}
}

func TestRegularPolygon(t *testing.T) {
	hex := RegularPolygon(Pt(0, 0), 1, 6, 0)
	if len(hex) != 6 {
		t.Fatalf("hexagon has %d vertices", len(hex))
	}
	want := 3 * math.Sqrt(3) / 2 // area of unit-circumradius hexagon
	if !almostEq(hex.Area(), want) {
		t.Fatalf("hexagon area = %v, want %v", hex.Area(), want)
	}
	if RegularPolygon(Pt(0, 0), 1, 2, 0) != nil {
		t.Fatal("n<3 should return nil")
	}
}

// Property: clipping never increases area, and the result stays within the
// half-plane.
func TestPropertyClipShrinks(t *testing.T) {
	prop := func(nx, ny int8, off int8) bool {
		if nx == 0 && ny == 0 {
			return true
		}
		pg := Square(Pt(-5, -5), 10).Polygon()
		h := HalfPlane{Normal: Pt(float64(nx), float64(ny)), Offset: float64(off)}
		out := pg.Clip(h)
		if out == nil {
			return true
		}
		if out.Area() > pg.Area()+1e-9 {
			return false
		}
		for _, p := range out {
			if h.Side(p) < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a clipped polygon still contains every original vertex that
// satisfied the half-plane.
func TestPropertyClipKeepsInsideVertices(t *testing.T) {
	prop := func(nx, ny int8, off int8) bool {
		if nx == 0 && ny == 0 {
			return true
		}
		pg := Square(Pt(0, 0), 8).Polygon()
		h := HalfPlane{Normal: Pt(float64(nx), float64(ny)), Offset: float64(off)}
		out := pg.Clip(h)
		for _, p := range pg {
			if h.Side(p) > 1e-6 {
				if out == nil || !out.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
