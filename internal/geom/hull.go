package geom

import "sort"

// ConvexHull returns the convex hull of the points in counter-clockwise
// order (Andrew's monotone chain). Collinear boundary points are dropped.
// Inputs of fewer than three distinct points return the distinct points.
func ConvexHull(points []Point) Polygon {
	if len(points) == 0 {
		return nil
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		return Polygon(ps)
	}

	hull := make(Polygon, 0, 2*len(ps))
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}
