package failure

import (
	"math"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/rng"
	"roborepair/internal/sim"
)

type fakeNode struct {
	alive bool
	loc   geom.Point
}

func (n *fakeNode) FailNow()             { n.alive = false }
func (n *fakeNode) Alive() bool          { return n.alive }
func (n *fakeNode) Location() geom.Point { return n.loc }

var _ Failable = (*fakeNode)(nil)

func TestExponentialLifetimeMean(t *testing.T) {
	m := &Exponential{Mean: 16000, Rand: rng.New(1)}
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(m.Lifetime())
	}
	got := sum / n
	if math.Abs(got-16000)/16000 > 0.03 {
		t.Fatalf("mean lifetime %v, want ≈16000", got)
	}
	if m.Name() != "exp(16000)" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestWeibullShapeOneMatchesExponentialMean(t *testing.T) {
	w := &Weibull{Scale: 100, Shape: 1, Rand: rng.New(2)}
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(w.Lifetime())
	}
	got := sum / n
	if math.Abs(got-100)/100 > 0.03 {
		t.Fatalf("weibull(100,1) mean %v, want ≈100", got)
	}
}

func TestWeibullMeanMatchesGamma(t *testing.T) {
	// Mean of Weibull(λ,k) is λ·Γ(1+1/k).
	w := &Weibull{Scale: 100, Shape: 2, Rand: rng.New(3)}
	want := 100 * math.Gamma(1.5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(w.Lifetime())
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("weibull(100,2) mean %v, want ≈%v", got, want)
	}
	if w.Name() != "weibull(100,2)" {
		t.Fatalf("Name = %q", w.Name())
	}
}

func TestWeibullAlwaysPositive(t *testing.T) {
	w := &Weibull{Scale: 10, Shape: 0.5, Rand: rng.New(4)}
	for i := 0; i < 10000; i++ {
		if v := w.Lifetime(); v <= 0 || math.IsInf(float64(v), 0) {
			t.Fatalf("invalid lifetime %v", v)
		}
	}
}

func TestInjectorArmKillsAtScheduledTime(t *testing.T) {
	sched := sim.NewScheduler()
	in := NewInjector(sched, &Exponential{Mean: 100, Rand: rng.New(5)})
	n := &fakeNode{alive: true}
	at := in.Arm(n)
	if at <= 0 {
		t.Fatalf("failure scheduled at %v", at)
	}
	sched.Run(at - 0.001)
	if !n.Alive() {
		t.Fatal("node died early")
	}
	sched.Run(at)
	if n.Alive() {
		t.Fatal("node did not die at its scheduled time")
	}
	if in.Killed() != 1 {
		t.Fatalf("Killed = %d", in.Killed())
	}
}

func TestInjectorDoesNotDoubleKill(t *testing.T) {
	sched := sim.NewScheduler()
	in := NewInjector(sched, &Exponential{Mean: 100, Rand: rng.New(6)})
	n := &fakeNode{alive: true}
	in.Arm(n)
	n.FailNow() // dies of another cause first
	sched.RunAll()
	if in.Killed() != 0 {
		t.Fatalf("injector killed an already-dead node: %d", in.Killed())
	}
}

func TestBurstCoverage(t *testing.T) {
	b := Burst{At: 10, Center: geom.Pt(50, 50), Radius: 20}
	if !b.Covers(geom.Pt(50, 50)) || !b.Covers(geom.Pt(65, 50)) {
		t.Fatal("burst should cover points within radius")
	}
	if b.Covers(geom.Pt(80, 50)) {
		t.Fatal("burst covered point outside radius")
	}
}

func TestScheduleBurstKillsOnlyCoveredAlive(t *testing.T) {
	sched := sim.NewScheduler()
	in := NewInjector(sched, &Exponential{Mean: 1e12, Rand: rng.New(7)})
	inside := &fakeNode{alive: true, loc: geom.Pt(10, 10)}
	outside := &fakeNode{alive: true, loc: geom.Pt(500, 500)}
	alreadyDead := &fakeNode{alive: false, loc: geom.Pt(12, 12)}
	in.ScheduleBurst(
		Burst{At: 100, Center: geom.Pt(10, 10), Radius: 30},
		[]Failable{inside, outside, alreadyDead},
	)
	sched.Run(99)
	if !inside.Alive() {
		t.Fatal("burst fired early")
	}
	sched.Run(100)
	if inside.Alive() {
		t.Fatal("covered node survived the burst")
	}
	if !outside.Alive() {
		t.Fatal("uncovered node died")
	}
	if in.Killed() != 1 {
		t.Fatalf("Killed = %d, want 1 (dead nodes don't recount)", in.Killed())
	}
}

func TestInjectorModelAccessor(t *testing.T) {
	m := &Exponential{Mean: 5, Rand: rng.New(8)}
	in := NewInjector(sim.NewScheduler(), m)
	if in.Model() != m {
		t.Fatal("Model() did not return the configured model")
	}
}
