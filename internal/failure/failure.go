// Package failure models sensor mortality. The paper assumes node
// lifetimes are exponentially distributed with mean T (16000 s in the
// experiments); this package provides that model plus a Weibull
// generalization and a correlated burst injector used by the disaster
// example (hazardous environments kill clusters of nodes together).
package failure

import (
	"fmt"
	"math"

	"roborepair/internal/geom"
	"roborepair/internal/rng"
	"roborepair/internal/sim"
)

// LifetimeModel draws the time-to-failure of a freshly deployed node.
type LifetimeModel interface {
	// Lifetime returns a positive time-to-failure draw in seconds.
	Lifetime() sim.Duration
	// Name identifies the model in reports.
	Name() string
}

// Exponential is the paper's memoryless lifetime model.
type Exponential struct {
	Mean float64
	Rand *rng.Source
}

// Lifetime implements LifetimeModel.
func (e *Exponential) Lifetime() sim.Duration {
	return sim.Duration(e.Rand.Exponential(e.Mean))
}

// Name implements LifetimeModel.
func (e *Exponential) Name() string { return fmt.Sprintf("exp(%g)", e.Mean) }

var _ LifetimeModel = (*Exponential)(nil)

// Weibull generalizes the exponential with a shape parameter: shape > 1
// models wear-out, shape < 1 infant mortality, shape == 1 reduces to
// Exponential. Extension beyond the paper for sensitivity studies.
type Weibull struct {
	Scale float64 // λ
	Shape float64 // k
	Rand  *rng.Source
}

// Lifetime implements LifetimeModel via inverse-CDF sampling.
func (w *Weibull) Lifetime() sim.Duration {
	u := w.Rand.Float64()
	if u >= 1 {
		u = 1 - 1e-12
	}
	// λ · (−ln(1−u))^{1/k}
	x := w.Scale * math.Pow(-math.Log(1-u), 1/w.Shape)
	if x <= 0 {
		x = 1e-9
	}
	return sim.Duration(x)
}

// Name implements LifetimeModel.
func (w *Weibull) Name() string { return fmt.Sprintf("weibull(%g,%g)", w.Scale, w.Shape) }

var _ LifetimeModel = (*Weibull)(nil)

// Burst kills every node within Radius of Center at time At. Used to model
// the localized destruction (fire, flooding) the paper's introduction
// motivates sensor replacement with.
type Burst struct {
	At     sim.Time
	Center geom.Point
	Radius float64
}

// Covers reports whether the burst kills a node at p.
func (b Burst) Covers(p geom.Point) bool { return b.Center.Dist(p) <= b.Radius }

// Injector schedules deaths. Failable is anything the injector can kill.
type Failable interface {
	// FailNow marks the node failed. Killing an already-failed node is a
	// no-op.
	FailNow()
	// Alive reports whether the node is still operational.
	Alive() bool
	// Location returns the node's position (for burst targeting).
	Location() geom.Point
}

// Injector owns all scheduled mortality in one run.
type Injector struct {
	sched  *sim.Scheduler
	model  LifetimeModel
	killed int

	// OnKill, if set, observes every node the injector kills (used by the
	// trace log).
	OnKill func(n Failable)
}

// NewInjector returns an injector drawing lifetimes from model.
func NewInjector(sched *sim.Scheduler, model LifetimeModel) *Injector {
	return &Injector{sched: sched, model: model}
}

func (in *Injector) kill(n Failable) {
	n.FailNow()
	in.killed++
	if in.OnKill != nil {
		in.OnKill(n)
	}
}

// Arm schedules the natural death of a freshly deployed node and returns
// its scheduled failure time.
func (in *Injector) Arm(n Failable) sim.Time {
	at := in.sched.Now().Add(in.model.Lifetime())
	in.sched.After(at.Sub(in.sched.Now()), func() {
		if n.Alive() {
			in.kill(n)
		}
	})
	return at
}

// ScheduleBurst arms a correlated burst against the given population.
// Nodes spawned after this call are unaffected.
func (in *Injector) ScheduleBurst(b Burst, population []Failable) {
	in.sched.After(b.At.Sub(in.sched.Now()), func() {
		for _, n := range population {
			if n.Alive() && b.Covers(n.Location()) {
				in.kill(n)
			}
		}
	})
}

// Killed reports how many nodes the injector has killed so far.
func (in *Injector) Killed() int { return in.killed }

// Model exposes the lifetime model in use.
func (in *Injector) Model() LifetimeModel { return in.model }
