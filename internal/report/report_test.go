package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Fig 2", "robots", "fixed", "dynamic")
	tb.AddRow("4", "96.3", "91.8")
	tb.AddRow("16", "103.0", "92.0")
	out := tb.String()
	if !strings.Contains(out, "Fig 2") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "robots") {
		t.Fatalf("header line wrong: %q", lines[1])
	}
	if !strings.Contains(lines[4], "103.0") {
		t.Fatalf("row content wrong: %q", lines[4])
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("wide-cell", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Every line should be the same width (aligned columns).
	if len(lines[0]) != len(lines[2]) {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3", "4")
	out := tb.String()
	if !strings.Contains(out, "1") {
		t.Fatal("row lost")
	}
	if tb.Cell(0, 2) != "" {
		t.Fatal("missing cell should read empty")
	}
	if tb.Cell(1, 3) != "4" {
		t.Fatal("extra cell should be retained")
	}
	if tb.Cell(99, 0) != "" || tb.Cell(0, -1) != "" {
		t.Fatal("out-of-range access should read empty")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("has,comma", "2")
	tb.AddRow(`has"quote`, "3")
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"has,comma",2` {
		t.Fatalf("comma quoting wrong: %q", lines[2])
	}
	if lines[3] != `"has""quote",3` {
		t.Fatalf("quote escaping wrong: %q", lines[3])
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("Fig 3", "x", "y")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "**Fig 3**") {
		t.Fatal("title missing")
	}
	if !strings.Contains(md, "| x | y |") {
		t.Fatalf("header missing:\n%s", md)
	}
	if !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("row missing:\n%s", md)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345) != "1.23" {
		t.Errorf("F = %q", F(1.2345))
	}
	if F1(1.25) != "1.2" && F1(1.25) != "1.3" {
		t.Errorf("F1 = %q", F1(1.25))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
	if U(7) != "7" {
		t.Errorf("U = %q", U(7))
	}
}

func TestNumRows(t *testing.T) {
	tb := NewTable("", "a")
	if tb.NumRows() != 0 {
		t.Fatal("fresh table has rows")
	}
	tb.AddRow("1")
	tb.AddRow("2")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}
