// Package report renders experiment outputs as aligned ASCII tables and
// CSV, the formats the cmd tools and EXPERIMENTS.md use.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are kept.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the cell at (row, col), or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// F formats a float for table cells with sensible precision.
func F(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// F1 formats a float with one decimal.
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// I formats an int for table cells.
func I(v int) string { return strconv.Itoa(v) }

// U formats an unsigned counter for table cells.
func U(v uint64) string { return strconv.FormatUint(v, 10) }

// String renders the table as an aligned ASCII block.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (header + rows). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Columns {
			if i > 0 {
				b.WriteByte(',')
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}
