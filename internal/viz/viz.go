// Package viz renders simulation state as ASCII field maps — a quick look
// at where the sensors, holes, and robots are without leaving the
// terminal. Used by the fieldwatch example and handy in test failures.
package viz

import (
	"fmt"
	"strings"

	"roborepair/internal/geom"
)

// Glyphs used by the world renderer, in increasing z-order (later glyphs
// overwrite earlier ones in the same cell).
const (
	GlyphEmpty   = '·'
	GlyphSensor  = 'o'
	GlyphDead    = 'x'
	GlyphRobot   = 'R'
	GlyphManager = 'M'
)

// Canvas rasterizes points in a bounded field onto a character grid.
type Canvas struct {
	cols, rows int
	bounds     geom.Rect
	cells      [][]rune
	zorder     map[rune]int
}

// NewCanvas returns a cols×rows canvas mapping the given field bounds.
// Dimensions are clamped to at least 1×1.
func NewCanvas(cols, rows int, bounds geom.Rect) *Canvas {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	cells := make([][]rune, rows)
	for i := range cells {
		cells[i] = make([]rune, cols)
		for j := range cells[i] {
			cells[i][j] = GlyphEmpty
		}
	}
	return &Canvas{
		cols:   cols,
		rows:   rows,
		bounds: bounds,
		cells:  cells,
		// A replacement node is deployed at its dead predecessor's exact
		// location, so an alive sensor outranks a dead marker in the same
		// cell: an 'x' on the map is a hole that is still open.
		zorder: map[rune]int{
			GlyphEmpty:   0,
			GlyphDead:    1,
			GlyphSensor:  2,
			GlyphRobot:   3,
			GlyphManager: 4,
		},
	}
}

// cell maps a field point to grid coordinates; ok is false outside bounds.
func (c *Canvas) cell(p geom.Point) (col, row int, ok bool) {
	if !c.bounds.Contains(p) {
		return 0, 0, false
	}
	w, h := c.bounds.Width(), c.bounds.Height()
	if w <= 0 || h <= 0 {
		return 0, 0, false
	}
	col = int((p.X - c.bounds.Min.X) / w * float64(c.cols))
	row = int((p.Y - c.bounds.Min.Y) / h * float64(c.rows))
	if col >= c.cols {
		col = c.cols - 1
	}
	if row >= c.rows {
		row = c.rows - 1
	}
	return col, row, true
}

// Plot draws glyph at the cell containing p. Glyphs with higher z-order
// win collisions; unknown glyphs always overwrite.
func (c *Canvas) Plot(p geom.Point, glyph rune) {
	col, row, ok := c.cell(p)
	if !ok {
		return
	}
	cur := c.cells[row][col]
	curZ, curKnown := c.zorder[cur]
	newZ, newKnown := c.zorder[glyph]
	if curKnown && newKnown && newZ < curZ {
		return
	}
	c.cells[row][col] = glyph
}

// Glyph returns the glyph at the cell containing p (GlyphEmpty outside).
func (c *Canvas) Glyph(p geom.Point) rune {
	col, row, ok := c.cell(p)
	if !ok {
		return GlyphEmpty
	}
	return c.cells[row][col]
}

// String renders the canvas with the Y axis pointing up (row 0 of the
// field at the bottom, as on a map).
func (c *Canvas) String() string {
	var b strings.Builder
	for row := c.rows - 1; row >= 0; row-- {
		b.WriteString(string(c.cells[row]))
		b.WriteByte('\n')
	}
	return b.String()
}

// Legend returns a one-line explanation of the world glyphs.
func Legend() string {
	return fmt.Sprintf("%c sensor  %c failed  %c robot  %c manager",
		GlyphSensor, GlyphDead, GlyphRobot, GlyphManager)
}

// Station is the minimal view of a plottable simulation entity.
type Station struct {
	Loc   geom.Point
	Glyph rune
}

// Render draws a full field snapshot: every station onto a canvas sized
// cols×rows over bounds.
func Render(bounds geom.Rect, cols, rows int, stations []Station) string {
	canvas := NewCanvas(cols, rows, bounds)
	for _, s := range stations {
		canvas.Plot(s.Loc, s.Glyph)
	}
	return canvas.String()
}
