package viz

import (
	"strings"
	"testing"

	"roborepair/internal/geom"
)

func TestCanvasPlotAndRender(t *testing.T) {
	c := NewCanvas(10, 10, geom.Square(geom.Pt(0, 0), 100))
	c.Plot(geom.Pt(5, 5), GlyphSensor)  // bottom-left cell
	c.Plot(geom.Pt(95, 95), GlyphRobot) // top-right cell
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("rows = %d", len(lines))
	}
	// Y axis points up: the robot (y=95) is on the first printed line.
	if !strings.ContainsRune(lines[0], GlyphRobot) {
		t.Fatalf("robot not on top line:\n%s", out)
	}
	if !strings.ContainsRune(lines[9], GlyphSensor) {
		t.Fatalf("sensor not on bottom line:\n%s", out)
	}
}

func TestCanvasZOrder(t *testing.T) {
	c := NewCanvas(4, 4, geom.Square(geom.Pt(0, 0), 100))
	p := geom.Pt(10, 10)
	c.Plot(p, GlyphRobot)
	c.Plot(p, GlyphSensor) // lower z-order: must not overwrite
	if got := c.Glyph(p); got != GlyphRobot {
		t.Fatalf("glyph = %c, robot should win", got)
	}
	c.Plot(p, GlyphManager) // higher z-order wins
	if got := c.Glyph(p); got != GlyphManager {
		t.Fatalf("glyph = %c, manager should win", got)
	}
}

func TestCanvasAliveSensorCoversDeadMarker(t *testing.T) {
	// A replacement node sits at its predecessor's location: the cell
	// must read as covered, not as a hole.
	c := NewCanvas(4, 4, geom.Square(geom.Pt(0, 0), 100))
	p := geom.Pt(50, 50)
	c.Plot(p, GlyphDead)
	c.Plot(p, GlyphSensor)
	if got := c.Glyph(p); got != GlyphSensor {
		t.Fatalf("glyph = %c, alive sensor should cover dead marker", got)
	}
	// And the reverse order gives the same result.
	c2 := NewCanvas(4, 4, geom.Square(geom.Pt(0, 0), 100))
	c2.Plot(p, GlyphSensor)
	c2.Plot(p, GlyphDead)
	if got := c2.Glyph(p); got != GlyphSensor {
		t.Fatalf("glyph = %c after reverse order", got)
	}
}

func TestCanvasOutOfBoundsIgnored(t *testing.T) {
	c := NewCanvas(4, 4, geom.Square(geom.Pt(0, 0), 100))
	c.Plot(geom.Pt(-5, 50), GlyphRobot)
	c.Plot(geom.Pt(50, 150), GlyphRobot)
	if strings.ContainsRune(c.String(), GlyphRobot) {
		t.Fatal("out-of-bounds plot rendered")
	}
	if c.Glyph(geom.Pt(-5, 50)) != GlyphEmpty {
		t.Fatal("out-of-bounds glyph should read empty")
	}
}

func TestCanvasBoundaryPointsClamp(t *testing.T) {
	c := NewCanvas(4, 4, geom.Square(geom.Pt(0, 0), 100))
	c.Plot(geom.Pt(100, 100), GlyphRobot) // exactly on the max corner
	if !strings.ContainsRune(c.String(), GlyphRobot) {
		t.Fatal("max-corner point dropped")
	}
}

func TestCanvasMinimumSize(t *testing.T) {
	c := NewCanvas(0, -3, geom.Square(geom.Pt(0, 0), 10))
	c.Plot(geom.Pt(5, 5), GlyphSensor)
	if got := c.String(); got != string(GlyphSensor)+"\n" {
		t.Fatalf("1x1 canvas = %q", got)
	}
}

func TestRenderHelper(t *testing.T) {
	out := Render(geom.Square(geom.Pt(0, 0), 100), 5, 5, []Station{
		{Loc: geom.Pt(50, 50), Glyph: GlyphRobot},
		{Loc: geom.Pt(10, 10), Glyph: GlyphDead},
	})
	if !strings.ContainsRune(out, GlyphRobot) || !strings.ContainsRune(out, GlyphDead) {
		t.Fatalf("render missing stations:\n%s", out)
	}
}

func TestLegendMentionsAllGlyphs(t *testing.T) {
	l := Legend()
	for _, g := range []rune{GlyphSensor, GlyphDead, GlyphRobot, GlyphManager} {
		if !strings.ContainsRune(l, g) {
			t.Fatalf("legend missing %c: %s", g, l)
		}
	}
}

func TestUnknownGlyphAlwaysOverwrites(t *testing.T) {
	c := NewCanvas(4, 4, geom.Square(geom.Pt(0, 0), 100))
	p := geom.Pt(50, 50)
	c.Plot(p, GlyphManager)
	c.Plot(p, '?')
	if got := c.Glyph(p); got != '?' {
		t.Fatalf("glyph = %c, unknown glyph should overwrite", got)
	}
}
