// Package analysis provides closed-form expectations for the quantities
// the paper measures, used to cross-validate the simulator: expected
// travel distances from geometric probability, expected hop counts from
// range geometry, expected failure counts from renewal theory, and
// expected repair waits from M/G/1 queueing. The validation tests (and
// cmd/validate) assert that simulation and theory agree to within
// model-error tolerances — a strong end-to-end invariant.
package analysis

import "math"

// UniformPairDistConst is the expected distance between two i.i.d.
// uniform points in a unit square (≈ 0.521405).
const UniformPairDistConst = 0.5214054331647207

// UniformToCenterConst is the expected distance from a uniform point in a
// unit square to the square's center: (√2 + asinh 1)/6 ≈ 0.382598.
var UniformToCenterConst = (math.Sqrt2 + math.Asinh(1)) / 6

// ExpectedPairDist returns the expected distance between two independent
// uniform points in a square of the given side — the model for the fixed
// algorithm's travel (robot and failure both ≈ uniform in one subarea).
func ExpectedPairDist(side float64) float64 {
	return UniformPairDistConst * side
}

// ExpectedDistToCenter returns the expected distance from a uniform point
// in a square of the given side to its center — the model for failure
// reports converging on the central manager.
func ExpectedDistToCenter(side float64) float64 {
	return UniformToCenterConst * side
}

// ExpectedNearestOfK returns the expected distance from a uniform point
// to the nearest of k independent uniform points in a square of the given
// side. For a Poisson field of intensity λ = k/side² the nearest-neighbor
// distance is Rayleigh with mean 1/(2√λ); the square's boundary inflates
// it slightly, which the tolerance of the validation tests absorbs.
//
// This models the dynamic and centralized algorithms' travel: a failure is
// served by the nearest of k robots whose positions are ≈ uniform (each
// robot sits at its last repair site).
func ExpectedNearestOfK(side float64, k int) float64 {
	if k <= 0 || side <= 0 {
		return 0
	}
	lambda := float64(k) / (side * side)
	return 1 / (2 * math.Sqrt(lambda))
}

// GreedyHopProgress is the typical fraction of the radio range covered
// per greedy-forwarding hop at the paper's density (50 nodes per
// 200 m × 200 m with a 63 m range ≈ 15 neighbors): the farthest neighbor
// toward the destination advances ≈ 80% of the range.
const GreedyHopProgress = 0.8

// ExpectedHops estimates the hop count of a geographically routed packet
// crossing dist meters with the given per-hop radio range. The first hop
// may use a different (larger) range — pass firstHopRange = range for
// homogeneous senders.
func ExpectedHops(dist, firstHopRange, relayRange float64) float64 {
	if dist <= 0 {
		return 0
	}
	first := firstHopRange * GreedyHopProgress
	if dist <= firstHopRange {
		return 1
	}
	rest := dist - first
	return 1 + math.Max(0, math.Ceil(rest/(relayRange*GreedyHopProgress)))
}

// ExpectedFailures returns the expected number of failures of a
// population of n continuously replaced positions over a horizon, when
// each node's lifetime is exponential with the given mean: renewal theory
// gives n·horizon/mean (replacement lag is negligible at the paper's
// repair delays).
func ExpectedFailures(n int, meanLifetime, horizon float64) float64 {
	if meanLifetime <= 0 {
		return 0
	}
	return float64(n) * horizon / meanLifetime
}

// Utilization returns the offered load ρ = λ·E[S] of one robot serving
// failures at rate lambda (failures/s) with mean service time meanService
// (travel + replacement, seconds).
func Utilization(lambda, meanService float64) float64 {
	return lambda * meanService
}

// MG1Wait returns the Pollaczek–Khinchine expected queueing delay (time
// from report to service start) of an M/G/1 queue with arrival rate
// lambda, mean service meanService and service variance serviceVar.
// It returns +Inf for ρ ≥ 1.
func MG1Wait(lambda, meanService, serviceVar float64) float64 {
	rho := Utilization(lambda, meanService)
	if rho >= 1 {
		return math.Inf(1)
	}
	es2 := serviceVar + meanService*meanService
	return lambda * es2 / (2 * (1 - rho))
}

// ExpectedRepairDelay estimates the mean failure→replacement delay of one
// robot's M/G/1 repair queue: detection (half the guardian window on
// average) + queue wait + own travel.
func ExpectedRepairDelay(lambda, meanService, serviceVar, detection float64) float64 {
	return detection + MG1Wait(lambda, meanService, serviceVar) + meanService
}
