// Validators for exported simulation artifacts — Chrome trace_event
// JSON, Prometheus text exposition, and time-series CSV — so smoke tools
// (telemetryck, invck) and tests share one set of format checks instead
// of each CLI growing its own.

package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// CheckChromeTrace parses a Chrome trace_event JSON document and verifies
// the invariants chrome://tracing and Perfetto rely on: every event has a
// phase, non-metadata events carry timestamps, complete slices have
// non-negative durations, and at least one lane is named.
func CheckChromeTrace(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	lanes := 0
	for i, e := range doc.TraceEvents {
		if e.Ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		if e.Ph != "M" && e.Ts == nil {
			return fmt.Errorf("event %d (%s): missing ts", i, e.Name)
		}
		if e.Ph == "X" && (e.Dur == nil || *e.Dur < 0) {
			return fmt.Errorf("event %d (%s): complete slice without valid dur", i, e.Name)
		}
		if e.Ph == "M" && e.Name == "thread_name" {
			lanes++
		}
	}
	if lanes == 0 {
		return fmt.Errorf("no named lanes")
	}
	return nil
}

// promLine matches one exposition-format sample:
// name{labels} value [timestamp].
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+( [0-9]+)?$`)

// CheckPrometheus verifies a Prometheus text exposition stream: every
// line is blank, a comment, or a well-formed sample, and at least one
// sample is present.
func CheckPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	samples, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("line %d: not a valid sample: %q", lineNo, line)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	return nil
}

// CheckCSV verifies a CSV stream is rectangular (every row has the
// header's field count), non-empty, and that the header contains every
// required column.
func CheckCSV(r io.Reader, required ...string) error {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return fmt.Errorf("empty file")
	}
	header := strings.Split(sc.Text(), ",")
	for _, want := range required {
		found := false
		for _, col := range header {
			if col == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("header lacks a %s column: %q", want, sc.Text())
		}
	}
	rows, lineNo := 0, 1
	for sc.Scan() {
		lineNo++
		if got := len(strings.Split(sc.Text(), ",")); got != len(header) {
			return fmt.Errorf("line %d: %d fields, header has %d", lineNo, got, len(header))
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rows == 0 {
		return fmt.Errorf("no data rows")
	}
	return nil
}
