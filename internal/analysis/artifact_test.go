package analysis

import (
	"strings"
	"testing"
)

func TestCheckChromeTrace(t *testing.T) {
	good := `{"traceEvents":[
		{"name":"thread_name","ph":"M","pid":1,"tid":1},
		{"name":"repair","ph":"X","ts":100,"dur":50,"pid":1,"tid":1},
		{"name":"fail","ph":"i","ts":80,"pid":1,"tid":1}
	]}`
	if err := CheckChromeTrace(strings.NewReader(good)); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []struct {
		name string
		doc  string
	}{
		{"invalid json", `{`},
		{"no events", `{"traceEvents":[]}`},
		{"missing ph", `{"traceEvents":[{"name":"x","ts":1}]}`},
		{"missing ts", `{"traceEvents":[{"name":"x","ph":"i"}]}`},
		{"negative dur", `{"traceEvents":[{"name":"thread_name","ph":"M"},{"name":"x","ph":"X","ts":1,"dur":-2}]}`},
		{"no lanes", `{"traceEvents":[{"name":"x","ph":"i","ts":1}]}`},
	}
	for _, tc := range bad {
		if err := CheckChromeTrace(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCheckPrometheus(t *testing.T) {
	good := strings.Join([]string{
		"# HELP sim_repairs_total repairs completed",
		"# TYPE sim_repairs_total counter",
		`sim_repairs_total{algorithm="dynamic"} 42`,
		"",
		"sim_clock_seconds 64000 1700000000",
	}, "\n")
	if err := CheckPrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	bad := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"comments only", "# just a comment\n"},
		{"malformed sample", "9metric 1\n"},
		{"no value", "sim_repairs_total\n"},
	}
	for _, tc := range bad {
		if err := CheckPrometheus(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCheckCSV(t *testing.T) {
	good := "t_s,alive,repairs\n0,400,0\n100,398,2\n"
	if err := CheckCSV(strings.NewReader(good), "t_s", "repairs"); err != nil {
		t.Fatalf("valid CSV rejected: %v", err)
	}
	if err := CheckCSV(strings.NewReader(good)); err != nil {
		t.Fatalf("valid CSV rejected with no required columns: %v", err)
	}
	bad := []struct {
		name     string
		doc      string
		required []string
	}{
		{"empty", "", nil},
		{"missing required column", "a,b\n1,2\n", []string{"t_s"}},
		{"ragged row", "t_s,alive\n0,400\n100\n", []string{"t_s"}},
		{"no data rows", "t_s,alive\n", nil},
	}
	for _, tc := range bad {
		if err := CheckCSV(strings.NewReader(tc.doc), tc.required...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
