package analysis

import (
	"math"
	"testing"

	"roborepair/internal/rng"
)

func TestExpectedPairDistMonteCarlo(t *testing.T) {
	r := rng.New(1)
	const side = 200.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		ax, ay := r.Uniform(0, side), r.Uniform(0, side)
		bx, by := r.Uniform(0, side), r.Uniform(0, side)
		sum += math.Hypot(ax-bx, ay-by)
	}
	got := sum / n
	want := ExpectedPairDist(side)
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("Monte Carlo pair dist %v vs closed form %v", got, want)
	}
}

func TestExpectedDistToCenterMonteCarlo(t *testing.T) {
	r := rng.New(2)
	const side = 400.0
	const n = 200000
	center := side / 2
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Hypot(r.Uniform(0, side)-center, r.Uniform(0, side)-center)
	}
	got := sum / n
	want := ExpectedDistToCenter(side)
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("Monte Carlo center dist %v vs closed form %v", got, want)
	}
}

func TestExpectedNearestOfKMonteCarlo(t *testing.T) {
	r := rng.New(3)
	const side = 800.0
	const k = 16
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		px, py := r.Uniform(0, side), r.Uniform(0, side)
		best := math.Inf(1)
		for j := 0; j < k; j++ {
			d := math.Hypot(r.Uniform(0, side)-px, r.Uniform(0, side)-py)
			if d < best {
				best = d
			}
		}
		sum += best
	}
	got := sum / n
	want := ExpectedNearestOfK(side, k)
	// The Poisson approximation ignores boundary effects; allow 10%.
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("Monte Carlo nearest-of-%d %v vs approximation %v", k, got, want)
	}
}

func TestExpectedNearestOfKScaling(t *testing.T) {
	// Quadrupling the robot count halves the expected distance.
	a := ExpectedNearestOfK(800, 4)
	b := ExpectedNearestOfK(800, 16)
	if math.Abs(a/b-2) > 1e-9 {
		t.Fatalf("scaling wrong: %v / %v", a, b)
	}
	if ExpectedNearestOfK(0, 4) != 0 || ExpectedNearestOfK(800, 0) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestExpectedNearestOfKPaperScale(t *testing.T) {
	// The paper observes ≈100 m per failure: area per robot is 200×200,
	// so E ≈ 200/2 = 100, independent of robot count.
	for _, k := range []int{4, 9, 16} {
		side := 200 * math.Sqrt(float64(k))
		if got := ExpectedNearestOfK(side, k); math.Abs(got-100) > 1e-9 {
			t.Fatalf("k=%d: E = %v, want 100", k, got)
		}
	}
}

func TestExpectedHops(t *testing.T) {
	if got := ExpectedHops(0, 63, 63); got != 0 {
		t.Fatalf("zero distance hops = %v", got)
	}
	if got := ExpectedHops(50, 63, 63); got != 1 {
		t.Fatalf("in-range hops = %v, want 1", got)
	}
	// 100 m with 63 m hops at 80% progress: 1 + ceil((100-50.4)/50.4) = 2.
	if got := ExpectedHops(100, 63, 63); got != 2 {
		t.Fatalf("100 m hops = %v, want 2", got)
	}
	// Manager's 250 m first hop shortens long paths.
	long := ExpectedHops(300, 63, 63)
	mgr := ExpectedHops(300, 250, 63)
	if mgr >= long {
		t.Fatalf("250 m first hop should reduce hops: %v vs %v", mgr, long)
	}
}

func TestExpectedFailures(t *testing.T) {
	// 200 sensors, 16000 s mean lifetime, 64000 s horizon → 800 failures.
	if got := ExpectedFailures(200, 16000, 64000); got != 800 {
		t.Fatalf("expected failures = %v", got)
	}
	if ExpectedFailures(200, 0, 64000) != 0 {
		t.Fatal("zero lifetime should yield 0, not Inf")
	}
}

func TestUtilizationAndMG1(t *testing.T) {
	if got := Utilization(0.01, 50); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rho = %v", got)
	}
	// M/D/1 (zero variance): W = λ·E[S]²/(2(1−ρ)).
	w := MG1Wait(0.01, 50, 0)
	want := 0.01 * 2500 / (2 * 0.5)
	if math.Abs(w-want) > 1e-9 {
		t.Fatalf("M/D/1 wait = %v, want %v", w, want)
	}
	// Higher variance means longer waits.
	if MG1Wait(0.01, 50, 1000) <= w {
		t.Fatal("variance should increase wait")
	}
	if !math.IsInf(MG1Wait(0.03, 50, 0), 1) {
		t.Fatal("overloaded queue should report Inf")
	}
}

func TestExpectedRepairDelayComposition(t *testing.T) {
	got := ExpectedRepairDelay(0.001, 100, 0, 20)
	wait := MG1Wait(0.001, 100, 0)
	if math.Abs(got-(20+wait+100)) > 1e-9 {
		t.Fatalf("composition wrong: %v", got)
	}
}
