package analysis_test

import (
	"fmt"
	"math"

	"roborepair/internal/analysis"
)

// The paper's ~100 m travel level falls out of the geometry: the expected
// distance to the nearest of k robots depends only on the area per robot.
func ExampleExpectedNearestOfK() {
	for _, k := range []int{4, 9, 16} {
		side := 200.0 * math.Sqrt(float64(k))
		fmt.Printf("k=%-2d field=%.0fm E[travel]=%.0fm\n",
			k, side, analysis.ExpectedNearestOfK(side, k))
	}
	// Output:
	// k=4  field=400m E[travel]=100m
	// k=9  field=600m E[travel]=100m
	// k=16 field=800m E[travel]=100m
}

// Renewal theory predicts the failure workload of the paper's runs.
func ExampleExpectedFailures() {
	// 800 sensors, 16000 s mean lifetime, 64000 s horizon.
	fmt.Println(analysis.ExpectedFailures(800, 16000, 64000))
	// Output:
	// 3200
}
