package roborepair_test

// Golden bit-identity regression for the algorithm-registry refactor:
// the files under testdata/golden were captured from the pre-registry
// tree (temporary generator, since deleted), and every run here must
// reproduce them byte for byte — Results JSON (which also locks the
// Config JSON encoding, and with it the checkpoint config hash) and the
// full causal trace. Regenerate the goldens only when a PR intentionally
// changes simulation behavior, by re-running the recipe below at the
// commit just before the change.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roborepair"
	"roborepair/internal/chaos"
)

// goldenConfig reproduces the capture recipe exactly: paper defaults at
// a 4000 s horizon with seed 3 and a full trace; the reliable-burst
// variant layers faster failures, the reliability protocol, the
// invariant checker, and a mid-run loss burst on top.
func goldenConfig(alg roborepair.Algorithm, variant string) roborepair.Config {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = alg
	cfg.SimTime = 4000
	cfg.Seed = 3
	cfg.TraceCapacity = -1
	if variant == "reliable-burst" {
		cfg.MeanLifetime = 2000
		cfg.Reliability.Enabled = true
		cfg.Invariants.Enabled = true
		plan, err := chaos.Parse("burst@1000-2000=0.3")
		if err != nil {
			panic(err)
		}
		cfg.Faults = plan
	}
	return cfg
}

func TestGoldenBitIdentity(t *testing.T) {
	for _, alg := range []roborepair.Algorithm{roborepair.Centralized, roborepair.Fixed, roborepair.Dynamic} {
		for _, variant := range []string{"paper", "reliable-burst"} {
			name := fmt.Sprintf("%s-%s", alg, variant)
			t.Run(name, func(t *testing.T) {
				w, err := roborepair.NewWorld(goldenConfig(alg, variant))
				if err != nil {
					t.Fatal(err)
				}
				res := w.Run()
				js, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				js = append(js, '\n')
				var sb strings.Builder
				for _, e := range w.Trace.Events() {
					sb.WriteString(e.String())
					sb.WriteByte('\n')
				}
				compareGolden(t, filepath.Join("testdata", "golden", name+".json"), js)
				compareGolden(t, filepath.Join("testdata", "golden", name+".trace"), []byte(sb.String()))
			})
		}
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(want) {
		return
	}
	// Report the first diverging line, not a megabyte dump.
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s diverges at line %d:\n got: %s\nwant: %s", path, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s: length differs (got %d lines, want %d)", path, len(gl), len(wl))
}
