# roborepair — reproduction of "Replacing Failed Sensor Nodes by Mobile
# Robots" (ICDCS Workshops 2006).

GO ?= go

.PHONY: all build test vet bench figures validate examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short-horizon benches: one per paper figure cell plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's figures at the full 64000 s horizon (minutes).
figures:
	$(GO) run ./cmd/figures -fig all -seeds 3

# Cross-check the simulator against closed-form models.
validate:
	$(GO) run ./cmd/validate

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/algorithmduel
	$(GO) run ./examples/mobilityduel

clean:
	$(GO) clean ./...
