# roborepair — reproduction of "Replacing Failed Sensor Nodes by Mobile
# Robots" (ICDCS Workshops 2006).

GO ?= go

.PHONY: all build test vet race bench bench-json bench-smoke bench-telemetry telemetry-smoke invariant-smoke checkpoint-smoke conformance-smoke ftdc-smoke energy-smoke fuzz-smoke cover figures validate examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Full test suite under the race detector — the parallel experiment
# engine's correctness gate.
race:
	$(GO) test -race ./...

# Short-horizon benches: one per paper figure cell plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark record for the per-PR perf ratchet (see
# DESIGN.md §12.5): runs the end-to-end throughput bench (bare and with
# the flight recorder armed) plus the kernel and radio microbenches, and
# writes the parsed metrics to BENCH_PR10.json.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput$$|BenchmarkSimulatorThroughputFTDC' -benchmem -benchtime 3x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSchedulerHotLoop|BenchmarkSchedulerChurn' -benchmem ./internal/sim ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkNeighborsDense|BenchmarkMediumBroadcast$$' -benchmem ./internal/radio ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_PR10.json
	@echo "wrote BENCH_PR10.json"

# Fast allocation check on the hot-path benchmarks only (seconds, not
# minutes): scheduler churn, medium broadcast, end-to-end throughput.
# The ceilings are the perf ratchet — a regression past a previously
# banked number fails the build.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSchedulerChurn|BenchmarkMediumBroadcast$$|BenchmarkMediumUnicast' -benchtime 1000x ./internal/sim ./internal/radio
	{ $(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput$$|BenchmarkSimulatorThroughputFTDC' -benchmem -benchtime 2x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSchedulerChurn' -benchmem -benchtime 100000x ./internal/sim ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkNeighborsDense|BenchmarkMediumBroadcast$$' -benchmem -benchtime 10000x ./internal/radio ; } \
	| $(GO) run ./cmd/benchjson -o /dev/null \
		-ceiling 'BenchmarkSimulatorThroughput=allocs/op<=210000' \
		-ceiling 'BenchmarkSimulatorThroughputFTDC=allocs/op<=212000' \
		-ceiling 'BenchmarkSchedulerChurn=allocs/op<=0' \
		-ceiling 'BenchmarkNeighborsDense=allocs/op<=0' \
		-ceiling 'BenchmarkMediumBroadcast=allocs/op<=0'

# Telemetry overhead check: the same throughput workload with the layer
# off and on; the enabled run must stay within 10% on sim-s/s.
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput' -benchtime 1x .

# End-to-end exporter check: run a small telemetered simulation, then
# validate that the Chrome trace parses, the Prometheus text scrapes,
# and the time-series CSV is well-formed.
telemetry-smoke:
	$(GO) run ./cmd/repairsim -alg centralized -simtime 4000 -telemetry \
		-prom /tmp/roborepair-metrics.txt \
		-timeseries /tmp/roborepair-timeseries.csv \
		-chrome-trace /tmp/roborepair-trace.json > /dev/null
	$(GO) run ./cmd/telemetryck \
		-chrome /tmp/roborepair-trace.json \
		-prom /tmp/roborepair-metrics.txt \
		-csv /tmp/roborepair-timeseries.csv

# Conservation-law sweep: every algorithm under every built-in chaos
# plan, with the runtime invariant checker on; exits nonzero on any
# violation. CI runs a reduced grid; the default (5 seeds, 8000 s) is the
# pre-release gate.
invariant-smoke:
	$(GO) run ./cmd/invck -seeds 2 -simtime 4000

# Checkpoint/restore gate: the differential test snapshots a mid-flight
# run under every algorithm × kernel combination, round-trips it through
# the binary format, restores, and requires the continuation to be
# bit-identical to an uninterrupted run (results JSON and trace events).
# The journal test proves a SIGKILLed sweep resumes to a byte-identical
# CSV.
checkpoint-smoke:
	$(GO) test -run 'TestCheckpointRestoreDifferential|TestRestoreRejectsTamperedSnapshot' ./internal/scenario
	$(GO) test -run 'TestSweepKillMinusNineResume' ./cmd/sweep

# Cross-algorithm conformance gate: every registered algorithm × both
# queue kernels must satisfy the registry contract — serial-vs-pool
# determinism, snapshot→restore→continue bit-identity, zero invariant
# violations under the burst/blackout/corrupt chaos plans, and
# observability-off-is-absent. A newly registered algorithm is covered
# with no test edits.
conformance-smoke:
	$(GO) test -run 'TestConformance' -count=1 .
	$(GO) test ./internal/algorithm ./internal/geom

# Flight-recorder gate: the codec and wiring tests, then an end-to-end
# record → verify → decode → diff pass through the CLIs. Two same-seed
# runs must produce byte-identical recordings (ftdcdump -diff exits
# nonzero otherwise), and -verify enforces the canonical-form property
# (decode → re-encode byte-identical) on a real capture.
ftdc-smoke:
	$(GO) test ./internal/ftdc
	$(GO) test -run 'TestRecorder|TestTelemetryDropped' ./internal/scenario
	$(GO) run ./cmd/repairsim -alg dynamic -simtime 4000 -ftdc /tmp/roborepair-a.ftdc > /dev/null
	$(GO) run ./cmd/repairsim -alg dynamic -simtime 4000 -ftdc /tmp/roborepair-b.ftdc > /dev/null
	$(GO) run ./cmd/ftdcdump -verify /tmp/roborepair-a.ftdc
	$(GO) run ./cmd/ftdcdump -diff /tmp/roborepair-a.ftdc /tmp/roborepair-b.ftdc
	$(GO) run ./cmd/ftdcdump /tmp/roborepair-a.ftdc

# Energy-layer gate: the battery ledger and power-model unit tests, the
# end-to-end battery scenarios (starvation, recharge, handoff, targeted
# drain, off-is-absent, seeded-mutation catch, checkpoint round-trip),
# then the invck grid with the layer live — every algorithm under the
# drain plans with the energy-conservation law armed.
energy-smoke:
	$(GO) test ./internal/energy
	$(GO) test -run 'TestBattery|TestEnergyConservation' -count=1 ./internal/scenario
	$(GO) run ./cmd/invck -seeds 2 -simtime 4000 -battery 60000

# Native fuzz smoke: 30 s per target over the checked-in seed corpora.
# The chaos target guards the fault-plan DSL round trip, the wire targets
# the binary codec's canonical-form property and the frame decoder's
# never-panic/never-wrongly-accept property under arbitrary mutation, and
# the kernel target drives the ladder and heap schedulers through random
# op sequences asserting identical fire traces. The snapshot and ftdc
# targets mutate encoded checkpoints/recordings asserting the decoders
# never panic and anything they accept re-encodes canonically.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzChaosParse -fuzztime 30s ./internal/chaos
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 30s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzFrameCorrupt -fuzztime 30s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzKernelOps -fuzztime 30s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz FuzzFTDCDecode -fuzztime 30s ./internal/ftdc

# Coverage gate: the simulation kernel, the scenario layer, the
# invariant checker, the wire codec (the hostile channel's attack
# surface), the flight-recorder codec, the algorithm registry, the
# energy model/ledger, and the failure injector must each stay at or
# above 80% statement coverage.
cover:
	@for pkg in ./internal/sim ./internal/scenario ./internal/invariant ./internal/wire ./internal/ftdc ./internal/algorithm ./internal/energy ./internal/failure; do \
		out=$$($(GO) test -cover $$pkg | tee /dev/stderr); \
		pct=$$(echo "$$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
		ok=$$(echo "$$pct 80" | awk '{print ($$1 >= $$2) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "FAIL: $$pkg coverage $$pct% < 80%"; exit 1; fi; \
	done

# Regenerate the paper's figures at the full 64000 s horizon (minutes).
figures:
	$(GO) run ./cmd/figures -fig all -seeds 3

# Cross-check the simulator against closed-form models.
validate:
	$(GO) run ./cmd/validate

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/algorithmduel
	$(GO) run ./examples/mobilityduel
	$(GO) run ./examples/telemetry > /dev/null
	$(GO) run ./examples/hostilechannel
	$(GO) run ./examples/attrition

clean:
	$(GO) clean ./...
